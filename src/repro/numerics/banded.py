"""Banded LU factorization and solves, from scratch.

Implicit Euler on a 1-D reaction–diffusion system produces Jacobians
with small bandwidth (the Brusselator in interleaved ``(u1,v1,u2,v2,…)``
ordering has ``kl = ku = 2``).  This module provides:

* :class:`BandedMatrix` — LAPACK-style band storage with conversion
  helpers,
* an LU factorization **without pivoting** (valid for the strictly
  diagonally dominant systems implicit Euler produces; singular or
  near-singular pivots raise),
* :func:`thomas_solve` — the tridiagonal specialisation.

Tested against dense ``numpy.linalg.solve`` and ``scipy`` oracles.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BandedMatrix", "solve_banded_system", "thomas_solve"]

#: Pivots smaller than this (relative to the largest diagonal entry)
#: indicate the no-pivot factorization is untrustworthy.
_PIVOT_RTOL = 1e-12


class BandedMatrix:
    """A square banded matrix in band storage.

    Storage layout (LAPACK ``gbsv``-like): ``bands[ku + i - j, j] ==
    A[i, j]`` for ``max(0, j-ku) <= i <= min(n-1, j+kl)``; row 0 of
    ``bands`` is the highest super-diagonal, row ``ku`` the main
    diagonal, row ``ku+kl`` the lowest sub-diagonal.

    Parameters
    ----------
    bands:
        Array of shape ``(kl + ku + 1, n)``.
    kl, ku:
        Numbers of sub- and super-diagonals.
    """

    def __init__(self, bands: np.ndarray, kl: int, ku: int) -> None:
        bands = np.asarray(bands, dtype=float)
        if bands.ndim != 2:
            raise ValueError(f"bands must be 2-D, got shape {bands.shape}")
        if kl < 0 or ku < 0:
            raise ValueError(f"kl and ku must be >= 0, got kl={kl}, ku={ku}")
        if bands.shape[0] != kl + ku + 1:
            raise ValueError(
                f"bands must have kl+ku+1={kl + ku + 1} rows, got {bands.shape[0]}"
            )
        self.bands = bands
        self.kl = kl
        self.ku = ku
        self.n = bands.shape[1]

    # ------------------------------------------------------------------
    # Construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, a: np.ndarray, kl: int, ku: int) -> "BandedMatrix":
        """Extract the bands of a dense square matrix.

        Raises if ``a`` has nonzero entries outside the declared band.
        """
        a = np.asarray(a, dtype=float)
        n = a.shape[0]
        if a.shape != (n, n):
            raise ValueError(f"matrix must be square, got {a.shape}")
        i_idx, j_idx = np.nonzero(a)
        if np.any(i_idx - j_idx > kl) or np.any(j_idx - i_idx > ku):
            raise ValueError("dense matrix has entries outside the declared band")
        bands = np.zeros((kl + ku + 1, n))
        for offset in range(-kl, ku + 1):
            diag = np.diagonal(a, offset)
            row = ku - offset
            if offset >= 0:
                bands[row, offset : offset + len(diag)] = diag
            else:
                bands[row, : len(diag)] = diag
        return cls(bands, kl, ku)

    def to_dense(self) -> np.ndarray:
        """Expand to a dense matrix (testing / small systems only)."""
        a = np.zeros((self.n, self.n))
        for offset in range(-self.kl, self.ku + 1):
            row = self.ku - offset
            length = self.n - abs(offset)
            if length <= 0:
                continue
            vals = (
                self.bands[row, offset : offset + length]
                if offset >= 0
                else self.bands[row, :length]
            )
            idx = np.arange(length)
            if offset >= 0:
                a[idx, idx + offset] = vals
            else:
                a[idx - offset, idx] = vals
        return a

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Banded matrix-vector product."""
        x = np.asarray(x, dtype=float)
        if x.shape != (self.n,):
            raise ValueError(f"x must have shape ({self.n},), got {x.shape}")
        y = np.zeros(self.n)
        for offset in range(-self.kl, self.ku + 1):
            row = self.ku - offset
            length = self.n - abs(offset)
            if length <= 0:
                continue
            if offset >= 0:
                y[:length] += self.bands[row, offset : offset + length] * x[offset:]
            else:
                y[-offset:] += self.bands[row, :length] * x[:length]
        return y

    # ------------------------------------------------------------------
    # Factorization and solve (no pivoting)
    # ------------------------------------------------------------------
    def lu_factor(self) -> "BandedLU":
        """LU factorization without pivoting.

        Valid for diagonally dominant matrices; raises
        :class:`numpy.linalg.LinAlgError` on a (near-)zero pivot.
        """
        kl, ku, n = self.kl, self.ku, self.n
        # Work on a dense-band copy indexed [i, j] via band row ku+i-j.
        lu = self.bands.copy()
        scale = np.max(np.abs(lu[ku])) or 1.0

        def get(i: int, j: int) -> float:
            return lu[ku + i - j, j]

        def add(i: int, j: int, value: float) -> None:
            lu[ku + i - j, j] += value

        def put(i: int, j: int, value: float) -> None:
            lu[ku + i - j, j] = value

        for k in range(n - 1):
            pivot = get(k, k)
            if abs(pivot) <= _PIVOT_RTOL * scale:
                raise np.linalg.LinAlgError(
                    f"near-zero pivot {pivot!r} at row {k}; "
                    "banded LU without pivoting requires diagonal dominance"
                )
            for i in range(k + 1, min(k + kl + 1, n)):
                factor = get(i, k) / pivot
                put(i, k, factor)  # store L below the diagonal
                for j in range(k + 1, min(k + ku + 1, n)):
                    add(i, j, -factor * get(k, j))
        if abs(get(n - 1, n - 1)) <= _PIVOT_RTOL * scale:
            raise np.linalg.LinAlgError("near-zero final pivot")
        return BandedLU(lu, kl, ku)


class BandedLU:
    """The packed LU factors produced by :meth:`BandedMatrix.lu_factor`."""

    def __init__(self, lu: np.ndarray, kl: int, ku: int) -> None:
        self._lu = lu
        self.kl = kl
        self.ku = ku
        self.n = lu.shape[1]

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` using the stored factors."""
        b = np.asarray(b, dtype=float)
        if b.shape != (self.n,):
            raise ValueError(f"b must have shape ({self.n},), got {b.shape}")
        kl, ku, n, lu = self.kl, self.ku, self.n, self._lu
        x = b.copy()
        # Forward substitution with unit-diagonal L.
        for i in range(n):
            j_lo = max(0, i - kl)
            for j in range(j_lo, i):
                x[i] -= lu[ku + i - j, j] * x[j]
        # Backward substitution with U.
        for i in range(n - 1, -1, -1):
            j_hi = min(n - 1, i + ku)
            for j in range(i + 1, j_hi + 1):
                x[i] -= lu[ku + i - j, j] * x[j]
            x[i] /= lu[ku, i]
        return x


def solve_banded_system(
    matrix: BandedMatrix, b: np.ndarray, *, backend: str = "native"
) -> np.ndarray:
    """Solve a banded system with the requested backend.

    ``backend="native"`` uses the from-scratch LU above; ``"scipy"``
    delegates to :func:`scipy.linalg.solve_banded` when available (used
    by the sequential reference solver for speed — results agree to
    rounding, as the test suite asserts).
    """
    if backend == "native":
        return matrix.lu_factor().solve(np.asarray(b, dtype=float))
    if backend == "scipy":
        try:
            from scipy.linalg import solve_banded as _scipy_solve_banded
        except ImportError as exc:  # pragma: no cover - scipy is a test dep
            raise RuntimeError("scipy backend requested but scipy missing") from exc
        return _scipy_solve_banded((matrix.kl, matrix.ku), matrix.bands, b)
    raise ValueError(f"unknown backend {backend!r}; use 'native' or 'scipy'")


def thomas_solve(
    lower: np.ndarray, diag: np.ndarray, upper: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Tridiagonal solve (Thomas algorithm) without pivoting.

    ``lower[i]`` multiplies ``x[i-1]`` in row ``i`` (``lower[0]``
    ignored); ``upper[i]`` multiplies ``x[i+1]`` (``upper[-1]`` ignored).
    Requires diagonal dominance.
    """
    diag = np.asarray(diag, dtype=float)
    n = diag.shape[0]
    lower = np.asarray(lower, dtype=float)
    upper = np.asarray(upper, dtype=float)
    b = np.asarray(b, dtype=float)
    if not (lower.shape == upper.shape == b.shape == (n,)):
        raise ValueError("all inputs must be 1-D arrays of equal length")
    c_prime = np.empty(n)
    d_prime = np.empty(n)
    scale = np.max(np.abs(diag)) or 1.0
    if abs(diag[0]) <= _PIVOT_RTOL * scale:
        raise np.linalg.LinAlgError("near-zero pivot at row 0")
    c_prime[0] = upper[0] / diag[0]
    d_prime[0] = b[0] / diag[0]
    for i in range(1, n):
        denom = diag[i] - lower[i] * c_prime[i - 1]
        if abs(denom) <= _PIVOT_RTOL * scale:
            raise np.linalg.LinAlgError(f"near-zero pivot at row {i}")
        c_prime[i] = upper[i] / denom
        d_prime[i] = (b[i] - lower[i] * d_prime[i - 1]) / denom
    x = np.empty(n)
    x[-1] = d_prime[-1]
    for i in range(n - 2, -1, -1):
        x[i] = d_prime[i] - c_prime[i] * x[i + 1]
    return x
