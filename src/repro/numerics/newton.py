"""Batched Newton for many independent 2x2 nonlinear systems.

The waveform-relaxation formulation of the Brusselator (Section 5 of the
paper) solves, at every time step, one small nonlinear system per
*spatial component pair* ``(u_i, v_i)`` with the neighbouring components
frozen at the previous outer iterate.  Those systems are independent, so
we solve them all at once with vectorised Newton and an *active mask*:

* components whose residual already satisfies the tolerance drop out,
* the per-component iteration count is returned as the **work** measure.

The per-component counts are the heart of the reproduction's cost model:
a component whose trajectory has converged verifies in one iteration,
an active one takes several, making the per-sweep cost proportional to
how much of the local subdomain is still evolving.

Two optimisations keep the kernel cheap without changing any observable
output (values, iteration counts and convergence flags are bit-identical
to the straightforward masked loop):

* bookkeeping runs on integer counters instead of repeated ``.any()``
  mask reductions, exploiting the invariant that every still-active
  component has stepped in every previous pass;
* when the caller opts in (``options.compact_threshold`` set *and* the
  callback advertises ``f.newton_compactable = True``), the active set
  is compacted (gather/scatter) once it falls below the threshold
  fraction, so converged components stop paying full-batch residual
  evaluations.  Compactable callbacks accept ``f(u, v, idx)`` where
  ``idx`` holds the original batch indices of the compacted components.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "NewtonOptions",
    "NewtonResult",
    "newton_batched_2x2",
    "newton_batched_2x2_guarded",
]

#: f(u, v) -> (F1, F2, J11, J12, J21, J22), all arrays of u's shape.
#: Compaction-aware callbacks (``f.newton_compactable = True``) are
#: additionally called as ``f(u, v, idx)`` on the gathered active set.
Residual2x2 = Callable[
    [np.ndarray, np.ndarray],
    tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray],
]


@dataclass(slots=True, frozen=True)
class NewtonOptions:
    """Newton solver configuration.

    Attributes
    ----------
    tol:
        Convergence test on ``max(|F1|, |F2|)`` per component.
    max_iter:
        Hard cap; exceeding it marks the component as not converged.
    damping:
        Step multiplier in ``(0, 1]`` (1 = full Newton).
    compact_threshold:
        If set (fraction in ``(0, 1]``), compact the active set once the
        active fraction drops below it — only honoured for callbacks
        that declare ``newton_compactable = True``.  ``None`` (default)
        keeps the original always-full-batch contract.
    jacobian_refresh:
        Refresh period for *modified-Newton* consumers that freeze a
        factored Jacobian between iterations (see
        ``repro.numerics.euler.implicit_euler_banded`` and
        :class:`repro.numerics.banded.BandedLUCache`).  ``1`` (default)
        means an exact Newton iteration matrix every iteration; ``k``
        reuses each factorization for ``k`` iterations.  The batched
        2x2 kernel itself always uses the analytic per-pass Jacobian.
    """

    tol: float = 1e-10
    max_iter: int = 25
    damping: float = 1.0
    compact_threshold: float | None = None
    jacobian_refresh: int = 1

    def __post_init__(self) -> None:
        if not self.tol > 0:
            raise ValueError(f"tol must be > 0, got {self.tol!r}")
        if self.max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {self.max_iter!r}")
        if not 0 < self.damping <= 1:
            raise ValueError(f"damping must be in (0, 1], got {self.damping!r}")
        if self.compact_threshold is not None and not 0 < self.compact_threshold <= 1:
            raise ValueError(
                f"compact_threshold must be in (0, 1], got {self.compact_threshold!r}"
            )
        if self.jacobian_refresh < 1:
            raise ValueError(
                f"jacobian_refresh must be >= 1, got {self.jacobian_refresh!r}"
            )


@dataclass(slots=True)
class NewtonResult:
    """Outcome of a batched solve.

    Attributes
    ----------
    u, v:
        Solution arrays.
    iterations:
        Per-component Newton iterations performed (work units).
    converged:
        Per-component convergence mask.
    """

    u: np.ndarray
    v: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray

    @property
    def total_work(self) -> float:
        return float(self.iterations.sum())

    @property
    def all_converged(self) -> bool:
        return bool(self.converged.all())


def newton_batched_2x2(
    f: Residual2x2,
    u0: np.ndarray,
    v0: np.ndarray,
    options: NewtonOptions | None = None,
) -> NewtonResult:
    """Solve a batch of independent 2x2 systems ``F(u_j, v_j) = 0``.

    Parameters
    ----------
    f:
        Vectorised residual+Jacobian callback.  By default it is always
        called on the *full* batch as ``f(u, v)`` (converged components
        included) — the active mask only controls which components get
        updated and charged work.  Callbacks that set
        ``f.newton_compactable = True`` are additionally called as
        ``f(u, v, idx)`` on the gathered active subset once compaction
        kicks in (see :class:`NewtonOptions.compact_threshold`).
    u0, v0:
        Initial guesses (not modified).
    options:
        Solver configuration; ``None`` means ``NewtonOptions()``.

    Notes
    -----
    The 2x2 Newton step is computed with the explicit inverse
    ``J⁻¹ = adj(J)/det(J)``.  Singular Jacobians (``|det|`` below 1e-300)
    mark the component failed rather than raising, so one pathological
    component cannot abort a whole sweep; callers inspect ``converged``.

    Invariant exploited throughout: every still-active component has
    stepped in every previous pass, so on pass ``p`` each active
    component's iteration count is exactly ``p``.  Counts are therefore
    *assigned* (``p`` at exit, ``max_iter`` at budget exhaustion)
    instead of incremented per pass — same numbers, fewer array ops.
    """
    if options is None:
        options = NewtonOptions()
    u = np.array(u0, dtype=float, copy=True)
    v = np.array(v0, dtype=float, copy=True)
    if u.shape != v.shape:
        raise ValueError(f"u0 and v0 must have equal shapes, {u.shape} vs {v.shape}")
    n = u.shape[0]
    iterations = np.zeros(n, dtype=np.int64)
    converged = np.zeros(n, dtype=bool)

    tol = options.tol
    max_iter = options.max_iter
    damping = options.damping
    threshold = options.compact_threshold
    compactable = (
        threshold is not None and n > 0 and getattr(f, "newton_compactable", False)
    )

    n_active = n
    active: np.ndarray | None = None  # full-batch mask, created on first exit
    idx: np.ndarray | None = None  # global indices once compacted
    uw = u
    vw = v

    # Single f evaluation per loop pass: the residual computed here both
    # finishes the previous step's convergence test and feeds this
    # pass's Newton update.  One extra pass (max_iter + 1) lets the last
    # permitted step still be verified.
    for p in range(max_iter + 1):
        if n_active == 0:
            break
        if (
            compactable
            and idx is None
            and n_active < n
            and n_active <= threshold * n
        ):
            idx = np.flatnonzero(active)
            uw = u[idx]
            vw = v[idx]

        if idx is None:
            # ---------------- full-batch mode ----------------
            f1, f2, j11, j12, j21, j22 = f(u, v)
            res_ok = np.maximum(np.abs(f1), np.abs(f2)) <= tol
            newly = res_ok if active is None else (res_ok & active)
            c = int(np.count_nonzero(newly))
            if c:
                converged |= newly
                iterations[newly] = p
                n_active -= c
                if n_active == 0:
                    break
                if active is None:
                    active = ~newly
                else:
                    active &= ~newly
            if p == max_iter:
                break
            det = j11 * j22 - j12 * j21
            singular = np.abs(det) < 1e-300
            n_sing = int(np.count_nonzero(singular))
            if n_sing:
                if active is None:
                    active = np.ones(n, dtype=bool)
                sing_active = singular & active
                cs = int(np.count_nonzero(sing_active))
                if cs:
                    iterations[sing_active] = p
                    active &= ~singular
                    n_active -= cs
                    if n_active == 0:
                        break
                det = np.where(singular, 1.0, det)
            du = (j22 * f1 - j12 * f2) / det
            dv = (j11 * f2 - j21 * f1) / det
            if active is None:
                u -= damping * du
                v -= damping * dv
            else:
                u = np.where(active, u - damping * du, u)
                v = np.where(active, v - damping * dv, v)
        else:
            # ---------------- compacted mode ----------------
            f1, f2, j11, j12, j21, j22 = f(uw, vw, idx)
            res_ok = np.maximum(np.abs(f1), np.abs(f2)) <= tol
            c = int(np.count_nonzero(res_ok))
            if c:
                done = idx[res_ok]
                converged[done] = True
                iterations[done] = p
                u[done] = uw[res_ok]
                v[done] = vw[res_ok]
                n_active -= c
                if n_active == 0:
                    break
                keep = ~res_ok
                idx = idx[keep]
                uw = uw[keep]
                vw = vw[keep]
                f1 = f1[keep]
                f2 = f2[keep]
                j11 = j11[keep]
                j12 = j12[keep]
                j21 = j21[keep]
                j22 = j22[keep]
            if p == max_iter:
                break
            det = j11 * j22 - j12 * j21
            singular = np.abs(det) < 1e-300
            n_sing = int(np.count_nonzero(singular))
            if n_sing:
                sing_idx = idx[singular]
                iterations[sing_idx] = p
                u[sing_idx] = uw[singular]
                v[sing_idx] = vw[singular]
                n_active -= n_sing
                if n_active == 0:
                    idx = None  # values already scattered back
                    break
                keep = ~singular
                idx = idx[keep]
                uw = uw[keep]
                vw = vw[keep]
                f1 = f1[keep]
                f2 = f2[keep]
                j11 = j11[keep]
                j12 = j12[keep]
                j21 = j21[keep]
                j22 = j22[keep]
                det = det[keep]
            uw = uw - damping * ((j22 * f1 - j12 * f2) / det)
            vw = vw - damping * ((j11 * f2 - j21 * f1) / det)

    if n_active:
        # Loop ended with the budget exhausted: survivors stepped in all
        # max_iter passes.  Scatter compacted values back if needed.
        if idx is not None:
            iterations[idx] = max_iter
            u[idx] = uw
            v[idx] = vw
        elif active is not None:
            iterations[active] = max_iter
        else:
            iterations[:] = max_iter

    # Every component is charged at least one work unit per sweep: even a
    # converged component had its residual evaluated (the "verification"
    # cost that keeps converged regions cheap but not free).
    np.maximum(iterations, 1, out=iterations)
    return NewtonResult(u=u, v=v, iterations=iterations, converged=converged)


def newton_batched_2x2_guarded(
    f: Residual2x2,
    u0: np.ndarray,
    v0: np.ndarray,
    options: NewtonOptions | None = None,
    *,
    max_retries: int = 2,
    damping_factor: float = 0.5,
) -> NewtonResult:
    """Divergence-guarded :func:`newton_batched_2x2`.

    Full Newton steps can overshoot into regions where the residual is
    undefined (negative arguments to roots/logs) and poison components
    with NaN/Inf; asynchronously, one poisoned halo then propagates
    chain-wide (the run-level backstop is
    :class:`repro.guard.watchdogs.DivergenceGuard`).  This wrapper is
    the batch-level first line of defence:

    1. solve with the caller's options;
    2. if any component came back non-finite, re-solve with the step
       damping multiplied by ``damping_factor`` (restarting from the
       *original* guess — the poisoned iterate carries no information),
       up to ``max_retries`` times;
    3. components still non-finite after the last retry are returned as
       the initial guess, marked not converged — finite data a caller
       can iterate on, never NaN.

    The happy path (all finite, the overwhelmingly common case) returns
    the plain kernel's result object unchanged, so guarded and
    unguarded solves are bit-identical whenever no retry fires.
    """
    if options is None:
        options = NewtonOptions()
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries!r}")
    if not 0 < damping_factor < 1:
        raise ValueError(
            f"damping_factor must be in (0, 1), got {damping_factor!r}"
        )
    result = newton_batched_2x2(f, u0, v0, options)
    bad = ~(np.isfinite(result.u) & np.isfinite(result.v))
    if not bad.any():
        return result
    damping = options.damping
    for _ in range(max_retries):
        damping *= damping_factor
        retry_options = NewtonOptions(
            tol=options.tol,
            max_iter=options.max_iter,
            damping=damping,
            compact_threshold=options.compact_threshold,
            jacobian_refresh=options.jacobian_refresh,
        )
        retry = newton_batched_2x2(f, u0[bad], v0[bad], retry_options)
        ok = np.isfinite(retry.u) & np.isfinite(retry.v)
        bad_idx = np.flatnonzero(bad)
        fixed = bad_idx[ok]
        result.u[fixed] = retry.u[ok]
        result.v[fixed] = retry.v[ok]
        result.iterations[fixed] += retry.iterations[ok]
        result.converged[fixed] = retry.converged[ok]
        bad[fixed] = False
        if not bad.any():
            return result
    # Last resort: surface the original guess, finite and honest.
    result.u[bad] = u0[bad]
    result.v[bad] = v0[bad]
    result.converged[bad] = False
    return result
