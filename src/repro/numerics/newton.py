"""Batched Newton for many independent 2x2 nonlinear systems.

The waveform-relaxation formulation of the Brusselator (Section 5 of the
paper) solves, at every time step, one small nonlinear system per
*spatial component pair* ``(u_i, v_i)`` with the neighbouring components
frozen at the previous outer iterate.  Those systems are independent, so
we solve them all at once with vectorised Newton and an *active mask*:

* components whose residual already satisfies the tolerance drop out,
* the per-component iteration count is returned as the **work** measure.

The per-component counts are the heart of the reproduction's cost model:
a component whose trajectory has converged verifies in one iteration,
an active one takes several, making the per-sweep cost proportional to
how much of the local subdomain is still evolving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["NewtonOptions", "NewtonResult", "newton_batched_2x2"]

#: f(u, v) -> (F1, F2, J11, J12, J21, J22), all arrays of u's shape.
Residual2x2 = Callable[
    [np.ndarray, np.ndarray],
    tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray],
]


@dataclass(slots=True, frozen=True)
class NewtonOptions:
    """Newton solver configuration.

    Attributes
    ----------
    tol:
        Convergence test on ``max(|F1|, |F2|)`` per component.
    max_iter:
        Hard cap; exceeding it marks the component as not converged.
    damping:
        Step multiplier in ``(0, 1]`` (1 = full Newton).
    """

    tol: float = 1e-10
    max_iter: int = 25
    damping: float = 1.0

    def __post_init__(self) -> None:
        if not self.tol > 0:
            raise ValueError(f"tol must be > 0, got {self.tol!r}")
        if self.max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {self.max_iter!r}")
        if not 0 < self.damping <= 1:
            raise ValueError(f"damping must be in (0, 1], got {self.damping!r}")


@dataclass(slots=True)
class NewtonResult:
    """Outcome of a batched solve.

    Attributes
    ----------
    u, v:
        Solution arrays.
    iterations:
        Per-component Newton iterations performed (work units).
    converged:
        Per-component convergence mask.
    """

    u: np.ndarray
    v: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray

    @property
    def total_work(self) -> float:
        return float(self.iterations.sum())

    @property
    def all_converged(self) -> bool:
        return bool(self.converged.all())


def newton_batched_2x2(
    f: Residual2x2,
    u0: np.ndarray,
    v0: np.ndarray,
    options: NewtonOptions = NewtonOptions(),
) -> NewtonResult:
    """Solve a batch of independent 2x2 systems ``F(u_j, v_j) = 0``.

    Parameters
    ----------
    f:
        Vectorised residual+Jacobian callback.  It is always called on
        the *full* batch (converged components included) — the active
        mask only controls which components get updated and charged
        work, keeping the callback free of gather/scatter logic.
    u0, v0:
        Initial guesses (not modified).

    Notes
    -----
    The 2x2 Newton step is computed with the explicit inverse
    ``J⁻¹ = adj(J)/det(J)``.  Singular Jacobians (``|det|`` below 1e-300)
    mark the component failed rather than raising, so one pathological
    component cannot abort a whole sweep; callers inspect ``converged``.
    """
    u = np.array(u0, dtype=float, copy=True)
    v = np.array(v0, dtype=float, copy=True)
    if u.shape != v.shape:
        raise ValueError(f"u0 and v0 must have equal shapes, {u.shape} vs {v.shape}")
    n = u.shape[0]
    iterations = np.zeros(n, dtype=np.int64)
    converged = np.zeros(n, dtype=bool)
    active = np.ones(n, dtype=bool)

    # Single f evaluation per loop pass: the residual computed here both
    # finishes the previous step's convergence test and feeds this
    # step's Newton update.  One extra pass (max_iter + 1) lets the last
    # permitted step still be verified.
    for _ in range(options.max_iter + 1):
        if not active.any():
            break
        f1, f2, j11, j12, j21, j22 = f(u, v)
        newly = active & (np.maximum(np.abs(f1), np.abs(f2)) <= options.tol)
        converged |= newly
        active &= ~newly
        if not active.any():
            break
        stepping = active & (iterations < options.max_iter)
        if not stepping.any():
            break  # remaining actives exhausted their budget: unconverged
        det = j11 * j22 - j12 * j21
        singular = np.abs(det) < 1e-300
        ok = stepping & ~singular
        det_safe = np.where(singular, 1.0, det)
        du = (j22 * f1 - j12 * f2) / det_safe
        dv = (j11 * f2 - j21 * f1) / det_safe
        u = np.where(ok, u - options.damping * du, u)
        v = np.where(ok, v - options.damping * dv, v)
        iterations[ok] += 1
        # Components with singular Jacobians stop iterating, unconverged.
        active &= ~singular

    # Every component is charged at least one work unit per sweep: even a
    # converged component had its residual evaluated (the "verification"
    # cost that keeps converged regions cheap but not free).
    iterations = np.maximum(iterations, 1)
    return NewtonResult(u=u, v=v, iterations=iterations, converged=converged)
