"""Numerical substrates: banded LU, batched Newton, implicit Euler, norms.

These are the "Solve" building blocks of the paper's two-stage iteration
(Section 5): implicit Euler for the time derivative and Newton for the
resulting nonlinear systems.  Everything is implemented from scratch on
numpy; :mod:`scipy` is used only in tests as an independent oracle and
as an optional fast backend for the sequential reference solution.

Work accounting: the batched Newton solvers return *per-component
iteration counts*.  One Newton iteration on one component at one time
step is the **work unit** of the whole reproduction — hosts convert work
units to virtual seconds (:meth:`repro.grid.Host.duration_for_work`).
This is what makes per-iteration cost *activity dependent*: components
whose trajectories have locally converged verify in a single Newton
iteration, active components take several, so the local residual is a
faithful load estimator exactly as the paper argues (Section 5.2).
"""

from repro.numerics.banded import BandedMatrix, solve_banded_system, thomas_solve
from repro.numerics.newton import (
    NewtonOptions,
    NewtonResult,
    newton_batched_2x2,
    newton_batched_2x2_guarded,
)
from repro.numerics.euler import implicit_euler_dense, implicit_euler_banded
from repro.numerics.norms import max_abs_norm, l2_norm, relative_change
from repro.numerics.ragged import ChainSegments, validate_chain_blocks

__all__ = [
    "BandedMatrix",
    "solve_banded_system",
    "thomas_solve",
    "NewtonOptions",
    "NewtonResult",
    "newton_batched_2x2",
    "newton_batched_2x2_guarded",
    "implicit_euler_dense",
    "implicit_euler_banded",
    "max_abs_norm",
    "l2_norm",
    "relative_change",
    "ChainSegments",
    "validate_chain_blocks",
]
