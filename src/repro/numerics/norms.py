"""Norms and residual measures."""

from __future__ import annotations

import numpy as np

__all__ = ["max_abs_norm", "l2_norm", "relative_change"]


def max_abs_norm(x: np.ndarray) -> float:
    """Infinity norm; the convergence measure used throughout the paper's
    asynchronous theory (El Tarazi's contraction results are in weighted
    max norms)."""
    if x.size == 0:
        return 0.0
    return float(np.max(np.abs(x)))


def l2_norm(x: np.ndarray) -> float:
    """Euclidean norm."""
    return float(np.linalg.norm(x.ravel()))


def relative_change(new: np.ndarray, old: np.ndarray, floor: float = 1e-30) -> float:
    """``|new - old|_inf / max(|old|_inf, floor)`` — scale-free residual."""
    if new.shape != old.shape:
        raise ValueError(f"shape mismatch: {new.shape} vs {old.shape}")
    return max_abs_norm(new - old) / max(max_abs_norm(old), floor)
