"""Implicit Euler integration of ODE systems (sequential reference).

The paper's two-stage iteration is "implicit Euler to approximate the
derivative, Newton to solve the resulting nonlinear system".  This
module provides the *sequential* version of that scheme on the **full
coupled system**: it is the fixed point towards which the parallel
waveform relaxation converges (same time grid, same tolerance), and
therefore the ground truth every parallel run is checked against.

Two variants:

* :func:`implicit_euler_dense` — dense Newton, any small system;
* :func:`implicit_euler_banded` — banded Newton for 1-D
  reaction–diffusion systems (the Brusselator's interleaved Jacobian has
  ``kl = ku = 2``), with native or scipy banded solves.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.numerics.banded import BandedLUCache, BandedMatrix, solve_banded_system
from repro.numerics.newton import NewtonOptions

__all__ = ["implicit_euler_dense", "implicit_euler_banded"]

#: rhs(t, y) -> dy/dt
Rhs = Callable[[float, np.ndarray], np.ndarray]
#: jac(t, y) -> dense Jacobian of rhs
DenseJac = Callable[[float, np.ndarray], np.ndarray]
#: jac_banded(t, y) -> band storage of the rhs Jacobian (kl+ku+1, n)
BandedJac = Callable[[float, np.ndarray], np.ndarray]


def _step_newton_dense(
    rhs: Rhs,
    jac: DenseJac,
    t_new: float,
    dt: float,
    y_prev: np.ndarray,
    y_guess: np.ndarray,
    tol: float,
    max_iter: int,
) -> np.ndarray:
    y = y_guess.copy()
    identity = np.eye(y.shape[0])
    for _ in range(max_iter):
        residual = y - y_prev - dt * rhs(t_new, y)
        if np.max(np.abs(residual)) <= tol:
            return y
        jacobian = identity - dt * jac(t_new, y)
        y = y - np.linalg.solve(jacobian, residual)
    residual = y - y_prev - dt * rhs(t_new, y)
    if np.max(np.abs(residual)) > tol:
        raise RuntimeError(
            f"implicit Euler Newton failed to converge at t={t_new} "
            f"(|F|={np.max(np.abs(residual)):.3e} > tol={tol:.3e})"
        )
    return y


def implicit_euler_dense(
    rhs: Rhs,
    jac: DenseJac,
    y0: np.ndarray,
    t_grid: np.ndarray,
    *,
    newton_tol: float = 1e-10,
    newton_max_iter: int = 50,
) -> np.ndarray:
    """Integrate ``y' = rhs(t, y)`` over ``t_grid`` with implicit Euler.

    Returns the trajectory array of shape ``(len(t_grid), len(y0))``
    (first row is ``y0``).
    """
    t_grid = np.asarray(t_grid, dtype=float)
    if t_grid.ndim != 1 or len(t_grid) < 2:
        raise ValueError("t_grid must be 1-D with at least two points")
    if np.any(np.diff(t_grid) <= 0):
        raise ValueError("t_grid must be strictly increasing")
    y0 = np.asarray(y0, dtype=float)
    out = np.empty((len(t_grid), y0.shape[0]))
    out[0] = y0
    for k in range(1, len(t_grid)):
        dt = t_grid[k] - t_grid[k - 1]
        out[k] = _step_newton_dense(
            rhs, jac, t_grid[k], dt, out[k - 1], out[k - 1],
            newton_tol, newton_max_iter,
        )
    return out


def implicit_euler_banded(
    rhs: Rhs,
    jac_banded: BandedJac,
    kl: int,
    ku: int,
    y0: np.ndarray,
    t_grid: np.ndarray,
    *,
    newton_tol: float = 1e-10,
    newton_max_iter: int = 50,
    backend: str = "scipy",
    options: NewtonOptions | None = None,
) -> np.ndarray:
    """Banded-Jacobian implicit Euler (reference solver for 1-D PDEs).

    ``jac_banded`` must return band storage (see
    :class:`repro.numerics.banded.BandedMatrix`) of ``∂rhs/∂y``.  The
    Newton matrix ``I - dt·J`` is assembled in band storage directly.

    When ``options`` is given, its ``tol``/``max_iter`` override the
    keyword defaults, and ``options.jacobian_refresh > 1`` switches the
    inner loop to *modified Newton*: the iteration matrix is factored
    through a :class:`~repro.numerics.banded.BandedLUCache` and each
    factorization is reused for up to ``jacobian_refresh`` solves while
    the step size is unchanged (also across time steps on a uniform
    grid).  The frozen-Jacobian mode always uses the native LU; the
    ``backend`` knob only affects the exact-Newton (refresh = 1) path.
    Convergence is still judged on the true residual, so the refresh
    period trades factorizations for (possibly) extra iterations
    without changing the fixed point.
    """
    if options is not None:
        newton_tol = options.tol
        newton_max_iter = options.max_iter
        refresh = options.jacobian_refresh
    else:
        refresh = 1
    t_grid = np.asarray(t_grid, dtype=float)
    if t_grid.ndim != 1 or len(t_grid) < 2:
        raise ValueError("t_grid must be 1-D with at least two points")
    if np.any(np.diff(t_grid) <= 0):
        raise ValueError("t_grid must be strictly increasing")
    y0 = np.asarray(y0, dtype=float)
    n = y0.shape[0]
    out = np.empty((len(t_grid), n))
    out[0] = y0
    cache = BandedLUCache(max_uses=refresh) if refresh > 1 else None
    for k in range(1, len(t_grid)):
        dt = t_grid[k] - t_grid[k - 1]
        t_new = t_grid[k]
        y = out[k - 1].copy()
        converged = False
        for _ in range(newton_max_iter):
            residual = y - out[k - 1] - dt * rhs(t_new, y)
            if np.max(np.abs(residual)) <= newton_tol:
                converged = True
                break
            if cache is None:
                bands = -dt * jac_banded(t_new, y)
                bands[ku, :] += 1.0  # the I of I - dt*J
                matrix = BandedMatrix(bands, kl, ku)
                y = y - solve_banded_system(matrix, residual, backend=backend)
            else:
                lu = cache.get(dt)
                if lu is None:
                    bands = -dt * jac_banded(t_new, y)
                    bands[ku, :] += 1.0  # the I of I - dt*J
                    lu = cache.put(dt, BandedMatrix(bands, kl, ku).lu_factor())
                y = y - lu.solve(residual)
        if not converged:
            residual = y - out[k - 1] - dt * rhs(t_new, y)
            if np.max(np.abs(residual)) > newton_tol:
                raise RuntimeError(
                    f"banded implicit Euler Newton failed at t={t_new}"
                )
        out[k] = y
    return out
