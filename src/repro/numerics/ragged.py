"""Ragged per-rank reductions over a concatenated chain state.

The lockstep replay (:mod:`repro.models.lockstep`) advances *every*
rank's block in one global vectorised sweep over the concatenated
component axis, then needs per-rank scalars back: the block-max residual
and the block-sum work.  Both reductions must be **bit-identical** to
what each rank computes on its own contiguous slice:

* ``max`` is exact under any association, so any reduction order works
  (``np.maximum.reduceat``, reshape tricks, per-slice calls all agree);
* ``sum`` is *not* — numpy's pairwise summation depends on the operand
  layout.  A rank computes ``work.sum()`` on its contiguous 1-D slice,
  which matches a per-slice ``values[lo:hi].sum()`` and, for equal-width
  blocks, the row-wise ``reshape(R, w).sum(axis=1)`` (each row is the
  same contiguous buffer).  ``np.add.reduceat`` is **not** used for
  sums: it accumulates left-to-right, which differs from pairwise
  summation on blocks longer than numpy's pairwise threshold.

:class:`ChainSegments` packages the block layout validation and both
reductions, choosing the fastest bit-preserving path per layout
(equal-width reshape > ``reduceat`` max / per-slice sum), and tolerates
empty (``lo == hi``) blocks — a rank that migrated everything away
reports residual ``0.0`` (matching
:attr:`repro.problems.base.IterationResult.local_residual` on a size-0
block) and work ``0.0``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ChainSegments", "validate_chain_blocks"]


def validate_chain_blocks(
    blocks: list[tuple[int, int]], n_components: int
) -> None:
    """Check that ``blocks`` tile ``[0, n_components)`` contiguously.

    Empty blocks (``lo == hi``) are allowed — they occur after a rank
    migrates its whole slice away — but gaps, overlaps and inversions
    are not.
    """
    if not blocks:
        raise ValueError("blocks must be non-empty")
    cursor = 0
    for i, (lo, hi) in enumerate(blocks):
        if lo != cursor:
            raise ValueError(
                f"blocks do not tile the component space: block {i} starts "
                f"at {lo}, expected {cursor}"
            )
        if hi < lo:
            raise ValueError(f"block {i} is inverted: [{lo}, {hi})")
        cursor = hi
    if cursor != n_components:
        raise ValueError(
            f"blocks cover [0, {cursor}) but the problem has "
            f"{n_components} components"
        )


class ChainSegments:
    """Per-rank reductions over values indexed by global component.

    Construction validates the tiling once; :meth:`max` and :meth:`sum`
    then reduce a ``(n_components,)`` array to ``(n_ranks,)`` with the
    bit-identity guarantees documented in the module docstring.
    """

    def __init__(
        self, blocks: list[tuple[int, int]], n_components: int
    ) -> None:
        validate_chain_blocks(blocks, n_components)
        self.blocks = [(int(lo), int(hi)) for lo, hi in blocks]
        self.n_components = int(n_components)
        self.n_ranks = len(self.blocks)
        self._has_empty = any(hi == lo for lo, hi in self.blocks)
        widths = {hi - lo for lo, hi in self.blocks}
        self._equal_width = len(widths) == 1 and not self._has_empty
        self._width = widths.pop() if self._equal_width else 0
        self._starts = np.array([lo for lo, _ in self.blocks], dtype=np.intp)

    def counts(self) -> np.ndarray:
        """Components per rank, shape ``(n_ranks,)``."""
        return np.array([hi - lo for lo, hi in self.blocks], dtype=np.intp)

    def max(self, values: np.ndarray) -> np.ndarray:
        """Per-rank max; ``0.0`` for empty blocks (size-0 residual)."""
        if self._equal_width:
            return values.reshape(self.n_ranks, self._width).max(axis=1)
        if not self._has_empty:
            return np.maximum.reduceat(values, self._starts)
        return np.array(
            [
                float(values[lo:hi].max()) if hi > lo else 0.0
                for lo, hi in self.blocks
            ]
        )

    def sum(self, values: np.ndarray) -> np.ndarray:
        """Per-rank sum, pairwise-ordered exactly like each rank's own
        contiguous ``values[lo:hi].sum()``."""
        if self._equal_width:
            return values.reshape(self.n_ranks, self._width).sum(axis=1)
        return np.array(
            [values[lo:hi].sum() if hi > lo else 0.0 for lo, hi in self.blocks]
        )
