"""Process-memory telemetry for scale runs.

The scale benchmarks report peak resident set size alongside wall-clock
and events/sec: memory, not time, is what first breaks a naive simulator
at 10k ranks.  Only the standard library is used (``resource`` on
POSIX); on platforms without ``resource`` the probe degrades to 0 rather
than failing the run.
"""

from __future__ import annotations

import sys
from typing import Any

__all__ = ["peak_rss_bytes", "export_memory_metrics"]

try:  # pragma: no cover - resource is always present on POSIX
    import resource
except ImportError:  # pragma: no cover - non-POSIX fallback
    resource = None  # type: ignore[assignment]


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes (0 if unknown).

    ``ru_maxrss`` is kilobytes on Linux but bytes on macOS; normalise to
    bytes.  The value is a process-lifetime high-water mark, so callers
    comparing configurations must measure in separate processes.
    """
    if resource is None:
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(peak)
    return int(peak) * 1024


def export_memory_metrics(registry: Any, **labels: Any) -> None:
    """Publish ``runtime.peak_rss_bytes`` into a metrics registry."""
    registry.gauge("runtime.peak_rss_bytes", **labels).set(peak_rss_bytes())
