"""Message records exchanged between grid nodes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Message"]


@dataclass(slots=True)
class Message:
    """A point-to-point message.

    Attributes
    ----------
    kind:
        Handler name on the destination node (e.g. ``"halo_from_left"``,
        ``"lb_from_right"``) — the PM2 "which function will manage the
        message" dispatch.
    payload:
        Arbitrary Python payload (numpy arrays for data, metadata dicts).
    size_bytes:
        Modelled wire size; drives the link transfer time.
    src_rank, dst_rank:
        Logical ranks in the solver's chain organization.
    send_time, arrival_time:
        Virtual timestamps, filled in by the runtime.
    seq:
        Per-channel sequence number stamped by the resilient transport
        (monotonic per ``(kind, src, dst)``); receivers use it for
        duplicate suppression and newest-wins stale rejection.  Always 0
        on the lossless fast path.
    attempt:
        Transmission attempt (0 = first send, >0 = retransmissions by
        the resilient transport).
    checksum:
        Send-time payload fingerprint
        (:func:`repro.integrity.payload_checksum`), stamped only when
        the attached fault injector has payload corruption armed with
        detection enabled; receivers verify it on delivery and treat a
        mismatch as loss.  Always ``None`` on the fast path and on
        every zero-corruption run — the field never perturbs them.
    """

    kind: str
    payload: Any
    size_bytes: float
    src_rank: int
    dst_rank: int
    send_time: float = 0.0
    arrival_time: float = 0.0
    seq: int = 0
    attempt: int = 0
    checksum: int | None = None
