"""PM2-like runtime layer: nodes, asynchronous messaging, tracing.

The paper implemented its algorithms on PM2, a multi-threaded runtime in
which receive handlers run as threads sharing the node's memory, and
sends are asynchronous (a communication thread is spawned).  This
package reproduces that programming model on the DES:

* :class:`~repro.runtime.node.GridNode` — one per simulated machine;
  registers named receive handlers and exposes :meth:`send`.
* Handlers run as zero-virtual-time events at message arrival, mutating
  node state exactly like a PM2 handler thread (atomic between yields).
* Per-channel "communication in progress" flags implement the mutual
  exclusion of the paper's Algorithm 1/4 (a node never starts a second
  send of the same kind to the same neighbour while one is in flight).
* :class:`~repro.runtime.tracer.Tracer` — structured event recording used
  by the Gantt renderings (Figures 1–4) and all metrics.
"""

from repro.runtime.memory import export_memory_metrics, peak_rss_bytes
from repro.runtime.message import Message
from repro.runtime.node import GridNode
from repro.runtime.tracer import (
    IterationSpan,
    IdleSpan,
    MessageRecord,
    MigrationRecord,
    ResidualRecord,
    Tracer,
)

__all__ = [
    "Message",
    "GridNode",
    "peak_rss_bytes",
    "export_memory_metrics",
    "Tracer",
    "IterationSpan",
    "IdleSpan",
    "MessageRecord",
    "MigrationRecord",
    "ResidualRecord",
]
