"""Grid nodes: the PM2-style programming surface of one machine.

A :class:`GridNode` couples a logical rank in the solver's chain with a
:class:`~repro.grid.host.Host`.  Solvers register *receive handlers* by
kind (the PM2 pattern of naming the function that will manage an
incoming message) and fire asynchronous sends; the runtime schedules the
delivery event at the network-computed arrival time and runs the handler
there, in zero virtual time, with full access to the node's shared state
— exactly like a PM2 handler thread between scheduler preemption points.

Per-channel mutual exclusion (paper, Section 5.1): ``channel_busy`` /
``mark_busy`` implement the "is there a communication of this kind in
progress" test; the flag clears automatically when the message arrives.

Resilient transport
-------------------
When a :class:`~repro.faults.injector.FaultInjector` is attached
(``node.injector``), every send is routed through a reliable transport
modelled after TCP-with-application-acks:

* each ``(kind, dst)`` channel stamps monotonically increasing sequence
  numbers;
* deliveries are acknowledged; an unacknowledged transfer is
  retransmitted after an exponentially backed-off, jittered timeout,
  up to ``ResilienceConfig.max_attempts`` attempts;
* receivers suppress duplicates, and *newest-wins* kinds (AIAC halo
  state) additionally reject reordered stale transmissions — the AIAC
  semantics that any sufficiently fresh state is acceptable;
* every delivery (including heartbeats) refreshes the receiver's
  passive liveness view (:meth:`GridNode.peer_alive`), which the load
  balancer consults before shedding load toward a peer;
* a transfer that exhausts its attempts fires the kind's registered
  *failure handler* so protocol layers can recover (the LB layer
  re-absorbs orphaned migration payloads).

Without an injector none of this machinery runs: the send path is the
original lossless fast path, bit-identical to the pre-fault codebase.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator

from repro.des.process import Hold, Signal
from repro.des.simulator import Simulator
from repro.grid.host import Host
from repro.grid.network import Network
from repro.integrity import payload_checksum
from repro.runtime.message import Message
from repro.runtime.tracer import MessageRecord, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.injector import FaultInjector
    from repro.obs.registry import MetricsRegistry

__all__ = ["GridNode", "HEARTBEAT_KIND"]

Handler = Callable[[Message], None]
FailureHandler = Callable[[Message, bool], None]

#: Internal liveness beacon; unreliable (no ack, no retry), no handler.
HEARTBEAT_KIND = "__hb__"


class _Transfer:
    """Sender-side state of one reliable message transfer."""

    __slots__ = (
        "message",
        "dst",
        "channel",
        "exclusive",
        "attempt",
        "acked",
        "in_flight",
        "delivered",
        "timer",
    )

    def __init__(
        self,
        message: Message,
        dst: "GridNode",
        channel: tuple[str, int],
        exclusive: bool,
    ) -> None:
        self.message = message
        self.dst = dst
        self.channel = channel
        self.exclusive = exclusive
        self.attempt = 0
        self.acked = False
        #: Wire copies (data or ack) scheduled but not yet resolved.
        self.in_flight = 0
        #: The receiver has processed the payload (possibly unacked).
        self.delivered = False
        self.timer: Any = None


class GridNode:
    """One simulated machine participating in a parallel solve.

    Parameters
    ----------
    sim:
        The simulation kernel.
    rank:
        Logical rank in the chain organization (0 .. nbprocs-1).
    host:
        The hardware this rank runs on.
    network:
        Shared network used to time messages.
    tracer:
        Shared trace recorder.
    """

    # Per-rank instances number in the thousands at scale; slots remove
    # the per-instance __dict__ (a few hundred bytes each) and catch
    # typo'd attribute writes from injectors/handlers.
    __slots__ = (
        "sim",
        "rank",
        "host",
        "network",
        "tracer",
        "_handlers",
        "_busy_channels",
        "stop_requested",
        "injector",
        "alive",
        "crash_count",
        "restart_signal",
        "_newest_wins",
        "_failure_handlers",
        "_pending_latest",
        "_send_seq",
        "_recv_latest",
        "_recv_seen",
        "_last_heard",
        "_parked",
        "duplicates_suppressed",
        "stale_rejected",
        "retries",
        "sends_failed",
    )

    def __init__(
        self,
        sim: Simulator,
        rank: int,
        host: Host,
        network: Network,
        tracer: Tracer | None = None,
    ) -> None:
        self.sim = sim
        self.rank = rank
        self.host = host
        self.network = network
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self._handlers: dict[str, Handler] = {}
        self._busy_channels: set[tuple[str, int]] = set()
        #: Set by the convergence monitor / driver to stop the main loop.
        self.stop_requested = False
        # -- resilience state (inert unless an injector is attached) ----
        #: Attached fault injector; None = lossless fast path.
        self.injector: "FaultInjector | None" = None
        #: False while the host is crashed (fault injection only).
        self.alive = True
        #: Number of crash events that hit this node so far.
        self.crash_count = 0
        #: Triggered when the host restarts after a crash.
        self.restart_signal = Signal(f"restart-{rank}")
        self._newest_wins: set[str] = set()
        self._failure_handlers: dict[str, FailureHandler] = {}
        #: Latest payload superseding a still-unacked exclusive transfer,
        #: per channel; flushed when the transfer resolves.
        self._pending_latest: dict[tuple[str, int], tuple[Any, Any, float]] = {}
        self._send_seq: dict[tuple[str, int], int] = {}
        self._recv_latest: dict[tuple[str, int], int] = {}
        self._recv_seen: dict[tuple[str, int], set[int]] = {}
        self._last_heard: dict[int, float] = {}
        #: Transfers whose retry timer fired while this host was crashed;
        #: re-armed by :meth:`resume_parked` at restart.
        self._parked: list[_Transfer] = []
        # Transport counters (surfaced in resilience experiment reports).
        self.duplicates_suppressed = 0
        self.stale_rejected = 0
        self.retries = 0
        self.sends_failed = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GridNode(rank={self.rank}, host={self.host.name})"

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def register_handler(
        self, kind: str, handler: Handler, *, newest_wins: bool = False
    ) -> None:
        """Register the function that manages messages of ``kind``.

        ``newest_wins`` marks the kind as idempotent state transfer
        (AIAC halo semantics): under the resilient transport, a
        transmission older than the freshest already-delivered one on
        the same channel is rejected as stale instead of handled.
        """
        if kind in self._handlers:
            raise ValueError(f"handler for kind {kind!r} already registered")
        self._handlers[kind] = handler
        if newest_wins:
            self._newest_wins.add(kind)

    def register_failure_handler(
        self, kind: str, handler: FailureHandler
    ) -> None:
        """Register the recovery hook run when a reliable send of
        ``kind`` exhausts its attempts.

        The hook receives ``(message, delivered)``; ``delivered`` is True
        when the receiver processed the payload but every acknowledgement
        was lost — the sender must then *not* assume the data vanished.
        """
        if kind in self._failure_handlers:
            raise ValueError(
                f"failure handler for kind {kind!r} already registered"
            )
        self._failure_handlers[kind] = handler

    # ------------------------------------------------------------------
    # Mutual exclusion flags
    # ------------------------------------------------------------------
    def channel_busy(self, kind: str, dst_rank: int) -> bool:
        """Is a send of ``kind`` to ``dst_rank`` still in flight?"""
        return (kind, dst_rank) in self._busy_channels

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------
    def peer_alive(self, rank: int) -> bool:
        """Passive liveness view of a peer rank.

        True while something (halo, protocol message, heartbeat) has been
        heard from ``rank`` within the resilience config's liveness
        timeout.  Always True on the lossless fast path.
        """
        injector = self.injector
        if injector is None:
            return True
        heard = self._last_heard.get(rank, 0.0)
        return self.sim.now - heard <= injector.resilience.liveness_timeout

    def heartbeat_process(
        self, peers: list["GridNode"], period: float
    ) -> Generator[Any, Any, None]:
        """Generator: emit liveness beacons to ``peers`` every ``period``.

        Spawned by the fault injector; beacons are unreliable (a lost
        beacon is simply not retried) and are consumed by the transport
        itself — no user handler is involved.
        """
        injector = self.injector
        nbytes = injector.resilience.heartbeat_bytes if injector else 8.0
        while not self.stop_requested:
            yield Hold(period)
            if self.stop_requested:
                return
            if not self.alive:
                continue
            for peer in peers:
                self.send(peer, HEARTBEAT_KIND, None, nbytes)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def export_metrics(self, registry: "MetricsRegistry", **labels) -> None:
        """Publish this rank's transport counters into a registry.

        Counters are zero (and still exported, so snapshots keep a
        stable shape) on the lossless fast path.
        """
        rank = self.rank
        registry.counter("transport.retries", rank=rank, **labels).add(
            self.retries
        )
        registry.counter("transport.sends_failed", rank=rank, **labels).add(
            self.sends_failed
        )
        registry.counter(
            "transport.duplicates_suppressed", rank=rank, **labels
        ).add(self.duplicates_suppressed)
        registry.counter("transport.stale_rejected", rank=rank, **labels).add(
            self.stale_rejected
        )
        registry.counter("transport.crashes", rank=rank, **labels).add(
            self.crash_count
        )
        registry.gauge("transport.alive", rank=rank, **labels).set(
            1.0 if self.alive else 0.0
        )

    def is_latest_send(self, message: Message) -> bool:
        """Was ``message`` the most recent send on its channel?

        Lets failure handlers distinguish "this payload is still the
        freshest we produced" (worth re-sending) from "a newer send has
        superseded it" (re-sending would deliver stale state with a
        fresh sequence number).
        """
        channel = (message.kind, message.dst_rank)
        return self._send_seq.get(channel, 0) == message.seq + 1

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(
        self,
        dst: "GridNode",
        kind: str,
        payload: Any,
        size_bytes: float,
        *,
        exclusive: bool = False,
    ) -> bool:
        """Asynchronously send ``payload`` to ``dst``.

        With ``exclusive=True`` the send is suppressed (returns ``False``)
        if a previous exclusive send of the same kind to the same rank has
        not yet arrived — the paper's mutual-exclusion variant, which
        "generates less communications".  Returns ``True`` if the message
        was actually injected.
        """
        if self.injector is not None:
            return self._send_resilient(dst, kind, payload, size_bytes, exclusive)
        channel = (kind, dst.rank)
        if exclusive:
            if channel in self._busy_channels:
                return False
            self._busy_channels.add(channel)

        now = self.sim.now
        arrival = self.network.arrival_time(self.host, dst.host, size_bytes, now)
        message = Message(
            kind=kind,
            payload=payload,
            size_bytes=size_bytes,
            src_rank=self.rank,
            dst_rank=dst.rank,
            send_time=now,
            arrival_time=arrival,
        )

        def deliver() -> None:
            if exclusive:
                self._busy_channels.discard(channel)
            handler = dst._handlers.get(kind)
            if handler is None:
                raise LookupError(
                    f"rank {dst.rank} has no handler for message kind {kind!r}"
                )
            handler(message)

        self.sim.schedule_at(arrival, deliver)
        self.tracer.message(
            MessageRecord(
                kind=kind,
                src_rank=self.rank,
                dst_rank=dst.rank,
                size_bytes=size_bytes,
                send_time=now,
                arrival_time=arrival,
            )
        )
        return True

    # ------------------------------------------------------------------
    # Resilient transport (fault injection active)
    # ------------------------------------------------------------------
    def _send_resilient(
        self,
        dst: "GridNode",
        kind: str,
        payload: Any,
        size_bytes: float,
        exclusive: bool,
    ) -> bool:
        if not self.alive:
            return False  # a crashed host cannot initiate sends
        channel = (kind, dst.rank)
        if exclusive:
            if channel in self._busy_channels:
                # Unlike the fast path, an exclusive transfer here stays
                # in flight for a full ack round trip — or several RTOs
                # when copies are being dropped.  Silently suppressing
                # every send in that window would freeze the channel's
                # state at the pre-drop value (long enough for a small
                # block to quiesce against the frozen halo and fool
                # convergence detection), so instead the *latest* payload
                # is buffered and flushed the moment the channel frees.
                self._pending_latest[channel] = (dst, payload, size_bytes)
                return False
            self._busy_channels.add(channel)
        seq = self._send_seq.get(channel, 0)
        self._send_seq[channel] = seq + 1
        checksum = None
        if self.injector.detection_active and kind != HEARTBEAT_KIND:
            checksum = payload_checksum(payload)
        message = Message(
            kind=kind,
            payload=payload,
            size_bytes=size_bytes,
            src_rank=self.rank,
            dst_rank=dst.rank,
            send_time=self.sim.now,
            arrival_time=0.0,
            seq=seq,
            checksum=checksum,
        )
        transfer = _Transfer(message, dst, channel, exclusive)
        self._transmit(transfer)
        return True

    def _transmit(self, transfer: _Transfer) -> None:
        """Put one transmission attempt of ``transfer`` on the wire."""
        injector = self.injector
        assert injector is not None
        sim = self.sim
        now = sim.now
        message = transfer.message
        message.attempt = transfer.attempt
        reliable = message.kind != HEARTBEAT_KIND
        copies = injector.on_transmit(self, transfer.dst, message)
        for extra_delay in copies:
            arrival = (
                self.network.arrival_time(
                    self.host, transfer.dst.host, message.size_bytes, now
                )
                + extra_delay
            )
            transfer.in_flight += 1
            sim.at(arrival, self._deliver, transfer, arrival)
            self.tracer.message(
                MessageRecord(
                    kind=message.kind,
                    src_rank=self.rank,
                    dst_rank=transfer.dst.rank,
                    size_bytes=message.size_bytes,
                    send_time=now,
                    arrival_time=arrival,
                )
            )
        if reliable:
            rto = injector.retry_timeout(self.rank, transfer.attempt)
            transfer.timer = sim.at(now + rto, self._on_timeout, transfer)

    def _deliver(self, transfer: _Transfer, arrival: float) -> None:
        """One wire copy of ``transfer`` reaches the receiver."""
        injector = self.injector
        assert injector is not None
        transfer.in_flight -= 1
        dst = transfer.dst
        if not dst.alive:
            injector.note_dropped_dead(transfer.message)
            return
        message = transfer.message
        message.arrival_time = arrival
        delivered = message
        if injector.corrupts_payloads and message.kind != HEARTBEAT_KIND:
            delivered = injector.corrupt_delivery(message)
            if delivered.checksum is not None and payload_checksum(
                delivered.payload
            ) != delivered.checksum:
                # Verify-on-receive: the copy was damaged in flight.
                # Discard it exactly as if it had been lost — no
                # handler, no ack — so the sender's retry timer
                # retransmits the pristine buffered original
                # (reject-and-refetch).
                injector.note_corruption_detected(delivered)
                return
        dst._on_receive(delivered)
        if message.kind == HEARTBEAT_KIND:
            return
        transfer.delivered = True
        if transfer.acked:
            return  # a duplicate copy arriving after completion
        if injector.ack_dropped(dst, self, message):
            return  # the acknowledgement is lost; the sender will retry
        if injector.ack_corrupted(dst, self, message):
            return  # the acknowledgement is mangled; ditto
        ack_arrival = self.network.arrival_time(
            dst.host, self.host, injector.resilience.ack_bytes, self.sim.now
        )
        transfer.in_flight += 1
        self.sim.at(ack_arrival, self._on_ack, transfer)

    def _on_ack(self, transfer: _Transfer) -> None:
        transfer.in_flight -= 1
        if transfer.acked:
            return
        transfer.acked = True
        if transfer.timer is not None:
            transfer.timer.cancel()
            transfer.timer = None
        if transfer.exclusive:
            self._busy_channels.discard(transfer.channel)
            self._flush_pending(transfer.channel)

    def _on_timeout(self, transfer: _Transfer) -> None:
        """Retry timer fired: retransmit, wait longer, or give up."""
        injector = self.injector
        assert injector is not None
        transfer.timer = None
        if transfer.acked:
            return
        if not self.alive:
            # Ghost-retransmission guard: a crashed host must not put
            # copies on the wire.  Before this check a retry timer armed
            # pre-crash kept retransmitting from the grave, and every
            # delivery refreshed the *receiver's* ``_last_heard`` — so a
            # peer that crashed before its first heartbeat was never
            # marked dead by ``peer_alive``.  Park the transfer instead;
            # the injector re-arms it at restart (``resume_parked``), so
            # failure-handler semantics survive the downtime.
            self._parked.append(transfer)
            return
        if transfer.in_flight > 0:
            # A copy (or its ack) is still travelling — the omniscient
            # simulator stands in for TCP's conservative RTO here: wait
            # one more timeout instead of spuriously duplicating.
            rto = injector.retry_timeout(self.rank, transfer.attempt)
            transfer.timer = self.sim.at(
                self.sim.now + rto, self._on_timeout, transfer
            )
            return
        if transfer.attempt + 1 < injector.resilience.max_attempts:
            transfer.attempt += 1
            self.retries += 1
            injector.stats["retries"] += 1
            self._transmit(transfer)
            return
        # Out of attempts: the transfer failed.
        self.sends_failed += 1
        injector.stats["sends_failed"] += 1
        if transfer.exclusive:
            self._busy_channels.discard(transfer.channel)
        failure = self._failure_handlers.get(transfer.message.kind)
        if failure is not None:
            failure(transfer.message, transfer.delivered)
        if transfer.exclusive:
            self._flush_pending(transfer.channel)

    def resume_parked(self) -> int:
        """Re-arm retry timers parked while this host was crashed.

        Called by the injector's restart path.  Each parked transfer
        re-enters :meth:`_on_timeout` after a fresh RTO (rather than
        retransmitting immediately), so a transfer acked during the
        downtime resolves silently and the attempt budget is spent only
        on genuine wire time.  Returns the number of transfers re-armed.
        """
        injector = self.injector
        assert injector is not None
        parked, self._parked = self._parked, []
        rearmed = 0
        for transfer in parked:
            if transfer.acked:
                continue
            rto = injector.retry_timeout(self.rank, transfer.attempt)
            transfer.timer = self.sim.at(
                self.sim.now + rto, self._on_timeout, transfer
            )
            rearmed += 1
        return rearmed

    def transport_snapshot(self) -> dict[str, dict]:
        """Copies of the per-channel sequence counters.

        Consumed by :class:`repro.guard.InvariantMonitor` to check
        sequence monotonicity; returns plain dicts so the guard can
        diff snapshots without holding references into live state.
        """
        return {
            "send_seq": dict(self._send_seq),
            "recv_latest": dict(self._recv_latest),
            "recv_seen_max": {
                channel: max(seen)
                for channel, seen in self._recv_seen.items()
                if seen
            },
        }

    def _flush_pending(self, channel: tuple[str, int]) -> None:
        """Send the latest payload buffered while ``channel`` was busy."""
        pending = self._pending_latest.pop(channel, None)
        if pending is None or self.stop_requested or not self.alive:
            return
        dst, payload, size_bytes = pending
        self._send_resilient(dst, channel[0], payload, size_bytes, True)

    def _on_receive(self, message: Message) -> bool:
        """Receiver-side filtering: liveness, dedup, stale rejection."""
        self._last_heard[message.src_rank] = self.sim.now
        kind = message.kind
        if kind == HEARTBEAT_KIND:
            return True
        channel = (kind, message.src_rank)
        if kind in self._newest_wins:
            latest = self._recv_latest.get(channel, -1)
            if message.seq <= latest:
                self.stale_rejected += 1
                return False  # stale or duplicate state: newest wins
            self._recv_latest[channel] = message.seq
        else:
            seen = self._recv_seen.setdefault(channel, set())
            if message.seq in seen:
                self.duplicates_suppressed += 1
                return False
            seen.add(message.seq)
        handler = self._handlers.get(kind)
        if handler is None:
            raise LookupError(
                f"rank {self.rank} has no handler for message kind {kind!r}"
            )
        handler(message)
        return True
