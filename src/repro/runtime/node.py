"""Grid nodes: the PM2-style programming surface of one machine.

A :class:`GridNode` couples a logical rank in the solver's chain with a
:class:`~repro.grid.host.Host`.  Solvers register *receive handlers* by
kind (the PM2 pattern of naming the function that will manage an
incoming message) and fire asynchronous sends; the runtime schedules the
delivery event at the network-computed arrival time and runs the handler
there, in zero virtual time, with full access to the node's shared state
— exactly like a PM2 handler thread between scheduler preemption points.

Per-channel mutual exclusion (paper, Section 5.1): ``channel_busy`` /
``mark_busy`` implement the "is there a communication of this kind in
progress" test; the flag clears automatically when the message arrives.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.des.simulator import Simulator
from repro.grid.host import Host
from repro.grid.network import Network
from repro.runtime.message import Message
from repro.runtime.tracer import MessageRecord, Tracer

__all__ = ["GridNode"]

Handler = Callable[[Message], None]


class GridNode:
    """One simulated machine participating in a parallel solve.

    Parameters
    ----------
    sim:
        The simulation kernel.
    rank:
        Logical rank in the chain organization (0 .. nbprocs-1).
    host:
        The hardware this rank runs on.
    network:
        Shared network used to time messages.
    tracer:
        Shared trace recorder.
    """

    def __init__(
        self,
        sim: Simulator,
        rank: int,
        host: Host,
        network: Network,
        tracer: Tracer | None = None,
    ) -> None:
        self.sim = sim
        self.rank = rank
        self.host = host
        self.network = network
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self._handlers: dict[str, Handler] = {}
        self._busy_channels: set[tuple[str, int]] = set()
        #: Set by the convergence monitor / driver to stop the main loop.
        self.stop_requested = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GridNode(rank={self.rank}, host={self.host.name})"

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def register_handler(self, kind: str, handler: Handler) -> None:
        """Register the function that manages messages of ``kind``."""
        if kind in self._handlers:
            raise ValueError(f"handler for kind {kind!r} already registered")
        self._handlers[kind] = handler

    # ------------------------------------------------------------------
    # Mutual exclusion flags
    # ------------------------------------------------------------------
    def channel_busy(self, kind: str, dst_rank: int) -> bool:
        """Is a send of ``kind`` to ``dst_rank`` still in flight?"""
        return (kind, dst_rank) in self._busy_channels

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(
        self,
        dst: "GridNode",
        kind: str,
        payload: Any,
        size_bytes: float,
        *,
        exclusive: bool = False,
    ) -> bool:
        """Asynchronously send ``payload`` to ``dst``.

        With ``exclusive=True`` the send is suppressed (returns ``False``)
        if a previous exclusive send of the same kind to the same rank has
        not yet arrived — the paper's mutual-exclusion variant, which
        "generates less communications".  Returns ``True`` if the message
        was actually injected.
        """
        channel = (kind, dst.rank)
        if exclusive:
            if channel in self._busy_channels:
                return False
            self._busy_channels.add(channel)

        now = self.sim.now
        arrival = self.network.arrival_time(self.host, dst.host, size_bytes, now)
        message = Message(
            kind=kind,
            payload=payload,
            size_bytes=size_bytes,
            src_rank=self.rank,
            dst_rank=dst.rank,
            send_time=now,
            arrival_time=arrival,
        )

        def deliver() -> None:
            if exclusive:
                self._busy_channels.discard(channel)
            handler = dst._handlers.get(kind)
            if handler is None:
                raise LookupError(
                    f"rank {dst.rank} has no handler for message kind {kind!r}"
                )
            handler(message)

        self.sim.schedule_at(arrival, deliver)
        self.tracer.message(
            MessageRecord(
                kind=kind,
                src_rank=self.rank,
                dst_rank=dst.rank,
                size_bytes=size_bytes,
                send_time=now,
                arrival_time=arrival,
            )
        )
        return True
