"""Structured execution tracing.

Every driver (SISC/SIAC/AIAC, balanced or not) reports its activity to a
:class:`Tracer`.  The trace is the raw material for:

* the ASCII Gantt charts reproducing Figures 1–4
  (:mod:`repro.analysis.gantt`),
* idle-fraction / imbalance metrics (:mod:`repro.analysis.metrics`),
* migration accounting in the load-balancing experiments.

Records are plain frozen dataclasses so tests can assert on them
directly.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "IterationSpan",
    "IdleSpan",
    "MessageRecord",
    "MigrationRecord",
    "ResidualRecord",
    "FaultRecord",
    "Tracer",
]


@dataclass(slots=True, frozen=True)
class IterationSpan:
    """One computation block: ``rank`` computed iteration ``k`` over [t0,t1]."""

    rank: int
    iteration: int
    t0: float
    t1: float
    work: float


@dataclass(slots=True, frozen=True)
class IdleSpan:
    """``rank`` was blocked waiting (synchronous models only) over [t0,t1]."""

    rank: int
    t0: float
    t1: float
    reason: str


@dataclass(slots=True, frozen=True)
class MessageRecord:
    """A message send/arrival pair."""

    kind: str
    src_rank: int
    dst_rank: int
    size_bytes: float
    send_time: float
    arrival_time: float


@dataclass(slots=True, frozen=True)
class MigrationRecord:
    """A load-balancing migration of ``n_components`` components."""

    src_rank: int
    dst_rank: int
    n_components: int
    time: float
    src_residual: float
    dst_residual: float


@dataclass(slots=True, frozen=True)
class ResidualRecord:
    """Local residual reported by ``rank`` at the end of an iteration."""

    rank: int
    iteration: int
    time: float
    residual: float
    n_local: int


@dataclass(slots=True, frozen=True)
class FaultRecord:
    """One injected fault event (crash, restart, partition window, …).

    ``rank`` is the affected rank, or ``None`` for platform-wide faults
    (e.g. a network partition).  ``t_end`` closes the fault's window;
    instantaneous events use ``t_end == time``.
    """

    kind: str
    time: float
    t_end: float
    rank: int | None = None
    detail: str = ""


class Tracer:
    """Accumulates execution records for one run.

    A ``Tracer`` can be disabled (``enabled=False``) for large sweeps
    where only the final timings matter; recording methods then return
    immediately.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.iterations: list[IterationSpan] = []
        self.idles: list[IdleSpan] = []
        self.messages: list[MessageRecord] = []
        self.migrations: list[MigrationRecord] = []
        self.residuals: list[ResidualRecord] = []
        self.faults: list[FaultRecord] = []

    # Recording -----------------------------------------------------------
    def iteration(self, span: IterationSpan) -> None:
        if self.enabled:
            self.iterations.append(span)

    def idle(self, span: IdleSpan) -> None:
        if self.enabled:
            self.idles.append(span)

    def message(self, record: MessageRecord) -> None:
        if self.enabled:
            self.messages.append(record)

    def migration(self, record: MigrationRecord) -> None:
        # Migration records are cheap and central to the experiments:
        # record them even when detailed tracing is disabled.
        self.migrations.append(record)

    def residual(self, record: ResidualRecord) -> None:
        if self.enabled:
            self.residuals.append(record)

    def fault(self, record: FaultRecord) -> None:
        # Fault events are rare and central to the resilience
        # experiments: record them even when detailed tracing is off.
        self.faults.append(record)

    # Convenience queries ---------------------------------------------------
    def iterations_of(self, rank: int) -> list[IterationSpan]:
        return [s for s in self.iterations if s.rank == rank]

    def idle_time_of(self, rank: int) -> float:
        return sum(s.t1 - s.t0 for s in self.idles if s.rank == rank)

    def busy_time_of(self, rank: int) -> float:
        return sum(s.t1 - s.t0 for s in self.iterations if s.rank == rank)

    def n_migrations(self) -> int:
        return len(self.migrations)

    def components_migrated(self) -> int:
        return sum(m.n_components for m in self.migrations)
