"""Structured execution tracing.

Every driver (SISC/SIAC/AIAC, balanced or not) reports its activity to a
:class:`Tracer`.  The trace is the raw material for:

* the ASCII Gantt charts reproducing Figures 1–4
  (:mod:`repro.analysis.gantt`),
* idle-fraction / imbalance metrics (:mod:`repro.analysis.metrics`),
* migration accounting in the load-balancing experiments,
* the JSONL / Chrome-trace exporters of :mod:`repro.obs.export`.

Records are plain frozen dataclasses so tests can assert on them
directly.

Disabled-mode contract
----------------------
``Tracer(enabled=False)`` gates **all** record lists uniformly: none of
``iterations`` / ``idles`` / ``messages`` / ``migrations`` / ``faults``
accumulate (before the observability PR, migrations and faults leaked
into a "disabled" tracer while busy/idle queries returned zero — the
worst of both worlds).  Aggregate *accounting*, by contrast, is always
on: cheap per-rank/per-kind totals are maintained on every recording
call, so ``busy_time_of`` / ``idle_time_of`` / ``n_migrations`` /
``components_migrated`` / ``n_messages`` are correct in both modes and
:meth:`export_metrics` can build a full metrics snapshot even for
untraced sweep runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry

__all__ = [
    "IterationSpan",
    "IdleSpan",
    "MessageRecord",
    "MigrationRecord",
    "ResidualRecord",
    "FaultRecord",
    "Tracer",
]


@dataclass(slots=True, frozen=True)
class IterationSpan:
    """One computation block: ``rank`` computed iteration ``k`` over [t0,t1]."""

    rank: int
    iteration: int
    t0: float
    t1: float
    work: float


@dataclass(slots=True, frozen=True)
class IdleSpan:
    """``rank`` was blocked waiting (synchronous models only) over [t0,t1]."""

    rank: int
    t0: float
    t1: float
    reason: str


@dataclass(slots=True, frozen=True)
class MessageRecord:
    """A message send/arrival pair."""

    kind: str
    src_rank: int
    dst_rank: int
    size_bytes: float
    send_time: float
    arrival_time: float


@dataclass(slots=True, frozen=True)
class MigrationRecord:
    """A load-balancing migration of ``n_components`` components."""

    src_rank: int
    dst_rank: int
    n_components: int
    time: float
    src_residual: float
    dst_residual: float


@dataclass(slots=True, frozen=True)
class ResidualRecord:
    """Local residual reported by ``rank`` at the end of an iteration."""

    rank: int
    iteration: int
    time: float
    residual: float
    n_local: int


@dataclass(slots=True, frozen=True)
class FaultRecord:
    """One injected fault event (crash, restart, partition window, …).

    ``rank`` is the affected rank, or ``None`` for platform-wide faults
    (e.g. a network partition).  ``t_end`` closes the fault's window;
    instantaneous events use ``t_end == time``.
    """

    kind: str
    time: float
    t_end: float
    rank: int | None = None
    detail: str = ""


class Tracer:
    """Accumulates execution records for one run.

    A ``Tracer`` can be disabled (``enabled=False``) for large sweeps
    where only the final timings matter; the detailed record lists then
    stay empty while the aggregate totals (busy/idle time, message,
    migration and fault counts) keep accumulating — see the module
    docstring for the full disabled-mode contract.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.iterations: list[IterationSpan] = []
        self.idles: list[IdleSpan] = []
        self.messages: list[MessageRecord] = []
        self.migrations: list[MigrationRecord] = []
        self.residuals: list[ResidualRecord] = []
        self.faults: list[FaultRecord] = []
        # Always-on aggregates (plain dict ops: cheap enough for the
        # per-sweep / per-message hot paths even in disabled mode).
        self._busy: dict[int, float] = {}
        self._idle: dict[int, float] = {}
        self._iter_counts: dict[int, int] = {}
        self._msg_counts: dict[str, int] = {}
        self._msg_bytes: dict[str, float] = {}
        self._fault_counts: dict[str, int] = {}
        self._n_migrations = 0
        self._components_migrated = 0

    # Recording -----------------------------------------------------------
    def iteration(self, span: IterationSpan) -> None:
        self._busy[span.rank] = (
            self._busy.get(span.rank, 0.0) + span.t1 - span.t0
        )
        self._iter_counts[span.rank] = self._iter_counts.get(span.rank, 0) + 1
        if self.enabled:
            self.iterations.append(span)

    def idle(self, span: IdleSpan) -> None:
        self._idle[span.rank] = self._idle.get(span.rank, 0.0) + span.t1 - span.t0
        if self.enabled:
            self.idles.append(span)

    def message(self, record: MessageRecord) -> None:
        kind = record.kind
        self._msg_counts[kind] = self._msg_counts.get(kind, 0) + 1
        self._msg_bytes[kind] = self._msg_bytes.get(kind, 0.0) + record.size_bytes
        if self.enabled:
            self.messages.append(record)

    def migration(self, record: MigrationRecord) -> None:
        self._n_migrations += 1
        self._components_migrated += record.n_components
        if self.enabled:
            self.migrations.append(record)

    def residual(self, record: ResidualRecord) -> None:
        if self.enabled:
            self.residuals.append(record)

    def fault(self, record: FaultRecord) -> None:
        self._fault_counts[record.kind] = (
            self._fault_counts.get(record.kind, 0) + 1
        )
        if self.enabled:
            self.faults.append(record)

    # Convenience queries ---------------------------------------------------
    def iterations_of(self, rank: int) -> list[IterationSpan]:
        return [s for s in self.iterations if s.rank == rank]

    def idle_time_of(self, rank: int) -> float:
        return self._idle.get(rank, 0.0)

    def busy_time_of(self, rank: int) -> float:
        return self._busy.get(rank, 0.0)

    def iteration_count_of(self, rank: int) -> int:
        return self._iter_counts.get(rank, 0)

    def n_messages(self) -> int:
        return sum(self._msg_counts.values())

    def n_migrations(self) -> int:
        return self._n_migrations

    def components_migrated(self) -> int:
        return self._components_migrated

    def n_faults(self) -> int:
        return sum(self._fault_counts.values())

    # Metrics export --------------------------------------------------------
    def export_metrics(self, registry: "MetricsRegistry", **labels) -> None:
        """Publish the always-on aggregates into a metrics registry.

        Works identically for enabled and disabled tracers — the
        aggregates never depend on the record lists.  Extra ``labels``
        (e.g. ``run="p8/balanced"``) are attached to every metric.
        """
        for rank in sorted(self._busy):
            registry.counter("trace.busy_time", rank=rank, **labels).add(
                self._busy[rank]
            )
        for rank in sorted(self._idle):
            registry.counter("trace.idle_time", rank=rank, **labels).add(
                self._idle[rank]
            )
        for rank in sorted(self._iter_counts):
            registry.counter("trace.iterations", rank=rank, **labels).add(
                self._iter_counts[rank]
            )
        for kind in sorted(self._msg_counts):
            registry.counter("trace.messages", kind=kind, **labels).add(
                self._msg_counts[kind]
            )
            registry.counter("trace.message_bytes", kind=kind, **labels).add(
                self._msg_bytes[kind]
            )
        for kind in sorted(self._fault_counts):
            registry.counter("trace.faults", kind=kind, **labels).add(
                self._fault_counts[kind]
            )
        registry.counter("trace.migrations", **labels).add(self._n_migrations)
        registry.counter("trace.components_migrated", **labels).add(
            self._components_migrated
        )
