"""Logical organizations of processors and dependency graphs.

The paper organises processors in a logical linear chain (the 1-D
decomposition of the state vector) and, for the heterogeneous
experiment, chooses that organisation *irregular* — machines of
different sites and speeds interleaved along the chain, "a grid
computing context not favorable to load balancing".  This package
provides the chain orderings and the dependency-graph view used by the
balancing library.
"""

from repro.topology.logical import (
    identity_order,
    interleaved_sites_order,
    random_order,
    sorted_by_speed_order,
)
from repro.topology.dependency import chain_dependency_graph, dependency_graph_stats
from repro.topology.graphs import (
    TOPOLOGY_FAMILIES,
    Topology,
    TopologySpec,
    build_topology,
    spec_for_family,
)

__all__ = [
    "identity_order",
    "interleaved_sites_order",
    "random_order",
    "sorted_by_speed_order",
    "chain_dependency_graph",
    "dependency_graph_stats",
    "TOPOLOGY_FAMILIES",
    "Topology",
    "TopologySpec",
    "build_topology",
    "spec_for_family",
]
