"""Chain orderings: which host runs which rank.

A chain order is a permutation ``order`` with ``order[rank] ==
host_index``; it is passed to the solvers as ``host_order``.  The
orderings here reproduce the experimental set-ups:

* :func:`identity_order` — hosts in declaration order (the local
  cluster);
* :func:`interleaved_sites_order` — round-robin across sites, so chain
  neighbours usually sit on *different* sites and every boundary
  exchange crosses a slow link: the paper's "logical organization ...
  chosen irregular in order to get a grid computing context not
  favorable to load balancing";
* :func:`random_order` — seeded random permutation;
* :func:`sorted_by_speed_order` — fastest host first (useful to place
  the chain's rank 0, which initiates detection tokens, on a fast
  machine).
"""

from __future__ import annotations

import numpy as np

from repro.grid.platform import Platform
from repro.util.rng import spawn_generator

__all__ = [
    "identity_order",
    "interleaved_sites_order",
    "random_order",
    "sorted_by_speed_order",
]


def identity_order(platform: Platform) -> list[int]:
    """Rank ``i`` runs on host ``i``."""
    return list(range(len(platform.hosts)))


def interleaved_sites_order(platform: Platform) -> list[int]:
    """Round-robin across sites: adjacent ranks land on different sites.

    With sites A, B, C of equal size the chain reads
    ``A0 B0 C0 A1 B1 C1 …`` — every halo exchange is inter-site.
    """
    by_site: dict[str, list[int]] = {}
    for i, host in enumerate(platform.hosts):
        by_site.setdefault(host.site, []).append(i)
    queues = [list(v) for _, v in sorted(by_site.items())]
    order: list[int] = []
    cursor = 0
    while any(queues):
        queue = queues[cursor % len(queues)]
        if queue:
            order.append(queue.pop(0))
        cursor += 1
    return order


def random_order(platform: Platform, seed: int) -> list[int]:
    """Seeded random permutation of the hosts."""
    rng = spawn_generator(seed, "topology/random_order")
    perm = rng.permutation(len(platform.hosts))
    return [int(i) for i in perm]


def sorted_by_speed_order(platform: Platform, *, fastest_first: bool = True) -> list[int]:
    """Hosts sorted by nominal speed."""
    speeds = np.array([h.speed for h in platform.hosts])
    idx = np.argsort(-speeds if fastest_first else speeds, kind="stable")
    return [int(i) for i in idx]
