"""Arbitrary communication topologies: generators + the ``Topology`` type.

The paper confines its experiments to a logical *linear chain* of 15
machines.  ROADMAP item 2 asks for the general-graph regimes studied by
Demirel & Sbalzarini ("Balancing indivisible real-valued loads in
arbitrary networks") and Berenbrink et al. ("Dynamic Averaging Load
Balancing on Arbitrary Graphs"): meshes, tori, hypercubes, random
geometric graphs, expanders and multi-site hierarchies.  This module is
the graph layer those regimes run on:

* :class:`TopologySpec` — a frozen, JSON-round-trippable description of
  a topology (family + parameters + seed) whose :meth:`~TopologySpec.digest`
  is stable across processes and construction orders;
* :class:`Topology` — the built artifact: integer nodes ``0..n-1``,
  sorted neighbour sets, per-edge **link classes** (``"lan"`` vs
  ``"wan"`` — a hierarchy's inter-site links cost more, which the zoo's
  communication accounting charges for), and a content digest covering
  the exact edge set;
* :func:`build_topology` — the seeded generator dispatch; every family
  is deterministic for a given spec (randomness flows through
  :func:`~repro.util.rng.spawn_generator` named streams, never through
  library-internal RNG) and every built graph is connected.

The PDE solver (:mod:`repro.core.solver`) consumes the *path* special
case through :meth:`Topology.path_neighbor` — its 1-D block
decomposition only admits chain migrations — while the balancing zoo
(:mod:`repro.balancing.zoo`) runs on any family.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import asdict, dataclass, field

import networkx as nx
import numpy as np

from repro.analysis.perf import stable_digest
from repro.topology.dependency import dependency_graph_stats
from repro.util.rng import spawn_generator

__all__ = [
    "TOPOLOGY_FAMILIES",
    "Topology",
    "TopologySpec",
    "build_topology",
    "spec_for_family",
]

#: Every generator family ``build_topology`` understands.
TOPOLOGY_FAMILIES = (
    "chain",
    "ring",
    "mesh2d",
    "mesh3d",
    "torus",
    "hypercube",
    "random_geometric",
    "expander",
    "hierarchy",
)


@dataclass(frozen=True)
class TopologySpec:
    """Declarative description of a topology; the zoo's cache-key unit.

    ``n`` is the *requested* node count; families with structural
    constraints (meshes need a box, hypercubes a power of two) may build
    a slightly different count — :func:`spec_for_family` picks the
    nearest valid parameters, and :attr:`Topology.n_nodes` is the truth.

    Attributes
    ----------
    family:
        One of :data:`TOPOLOGY_FAMILIES`.
    n:
        Node count (``chain``/``ring``/``random_geometric``/``expander``)
        or the product of ``dims`` (meshes/tori), ``2**d`` (hypercube),
        ``sites * site_size`` (hierarchy).
    seed:
        Root seed of the generator's named RNG streams (only the random
        families draw from it).
    dims:
        Mesh/torus box, e.g. ``(4, 4)`` or ``(3, 3, 3)``.
    degree:
        Target degree of the ``expander`` family (cycle + seeded
        matchings, so actual degrees are ``2..degree``).
    radius:
        Connection radius of ``random_geometric`` on the unit square.
    sites, site_size:
        Shape of the ``hierarchy`` family: ``sites`` rings of
        ``site_size`` machines, gateways meshed by WAN links.
    """

    family: str
    n: int = 0
    seed: int = 0
    dims: tuple[int, ...] = ()
    degree: int = 4
    radius: float = 0.35
    sites: int = 3
    site_size: int = 4

    def __post_init__(self) -> None:
        if self.family not in TOPOLOGY_FAMILIES:
            raise ValueError(
                f"unknown topology family {self.family!r}; "
                f"choose from {TOPOLOGY_FAMILIES}"
            )
        # Tolerate JSON round trips (lists) without breaking frozen-ness.
        object.__setattr__(self, "dims", tuple(int(d) for d in self.dims))

    def to_dict(self) -> dict:
        data = asdict(self)
        data["dims"] = list(self.dims)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "TopologySpec":
        return cls(**{**data, "dims": tuple(data.get("dims", ()))})

    def digest(self) -> str:
        """Stable content address of the spec (canonical-JSON SHA-256)."""
        return stable_digest(self.to_dict())

    def label(self) -> str:
        """Short human-readable tag for report rows."""
        if self.family in ("mesh2d", "mesh3d", "torus") and self.dims:
            shape = "x".join(str(d) for d in self.dims)
            return f"{self.family}[{shape}]"
        if self.family == "hierarchy":
            return f"hierarchy[{self.sites}x{self.site_size}]"
        return f"{self.family}[{self.n}]"


class Topology:
    """A built communication topology: graph + link classes + digest.

    Nodes are always the integers ``0..n-1`` (generators relabel
    structured node names deterministically), so load vectors index
    directly.  Edges carry a *link class* — ``"lan"`` by default,
    ``"wan"`` for a hierarchy's inter-site links — which the zoo's
    communication-cost accounting weights.
    """

    def __init__(
        self,
        spec: TopologySpec,
        graph: nx.Graph,
        *,
        link_classes: dict[tuple[int, int], str] | None = None,
        coords: dict[int, tuple[float, float]] | None = None,
    ) -> None:
        n = graph.number_of_nodes()
        if n < 1:
            raise ValueError("topology must have at least one node")
        if sorted(graph.nodes()) != list(range(n)):
            raise ValueError("topology nodes must be the integers 0..n-1")
        if n > 1 and not nx.is_connected(graph):
            raise ValueError(f"{spec.label()}: generated graph is not connected")
        self.spec = spec
        self.graph = graph
        self.coords = coords
        self._link_classes = {
            _edge_key(u, v): cls for (u, v), cls in (link_classes or {}).items()
        }
        self._neighbors: list[tuple[int, ...]] = [
            tuple(sorted(graph.neighbors(u))) for u in range(n)
        ]
        self._is_path: bool | None = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return self.graph.number_of_nodes()

    def edges(self) -> list[tuple[int, int]]:
        """All edges as sorted ``(u, v)`` pairs with ``u < v``, sorted."""
        return sorted(_edge_key(u, v) for u, v in self.graph.edges())

    def neighbors(self, u: int) -> tuple[int, ...]:
        """Sorted neighbour set of ``u``."""
        return self._neighbors[u]

    def degree(self, u: int) -> int:
        return len(self._neighbors[u])

    def max_degree(self) -> int:
        return max((len(nb) for nb in self._neighbors), default=0)

    def link_class(self, u: int, v: int) -> str:
        """The link class of edge ``(u, v)`` (``"lan"`` unless marked)."""
        return self._link_classes.get(_edge_key(u, v), "lan")

    def stats(self) -> dict:
        """Structural statistics + family metadata (report material)."""
        stats = dependency_graph_stats(self.graph)
        stats["family"] = self.spec.family
        stats["label"] = self.spec.label()
        stats["n_wan_edges"] = sum(
            1 for cls in self._link_classes.values() if cls == "wan"
        )
        return stats

    def digest(self) -> str:
        """Content digest: spec + exact edge set + link classes.

        Two processes building the same spec must agree byte-for-byte —
        the property the ``topology-smoke`` CI job pins.
        """
        return stable_digest(
            {
                "spec": self.spec.to_dict(),
                "edges": [list(e) for e in self.edges()],
                "links": {
                    f"{u}-{v}": self.link_class(u, v) for u, v in self.edges()
                },
            }
        )

    # ------------------------------------------------------------------
    # The solver-facing path view
    # ------------------------------------------------------------------
    def is_path(self) -> bool:
        """Is this exactly the chain ``0-1-...-(n-1)``?

        The PDE solver's contiguous 1-D decomposition only migrates
        between chain neighbours; it asserts this before consuming the
        topology.
        """
        if self._is_path is None:
            n = self.n_nodes
            self._is_path = self.edges() == [(i, i + 1) for i in range(n - 1)]
        return self._is_path

    def path_neighbor(self, rank: int, side: str) -> int | None:
        """Chain neighbour of ``rank`` toward ``side`` (``None`` at ends).

        Only valid for path topologies — the solver's replacement for
        its previously hard-coded ``rank ± 1``.
        """
        if side not in ("left", "right"):
            raise ValueError(f"side must be 'left' or 'right', got {side!r}")
        if not self.is_path():
            raise ValueError(
                f"{self.spec.label()} is not a path; path_neighbor is only "
                f"defined on chain topologies"
            )
        idx = rank - 1 if side == "left" else rank + 1
        if 0 <= idx < self.n_nodes:
            return idx
        return None

    @classmethod
    def chain(cls, n: int) -> "Topology":
        """The solver's default topology: the paper's logical chain."""
        return build_topology(TopologySpec("chain", n))


def _edge_key(u: int, v: int) -> tuple[int, int]:
    return (u, v) if u < v else (v, u)


def _relabel_sorted(graph: nx.Graph) -> nx.Graph:
    """Relabel arbitrary (tuple) node names to ``0..n-1`` by sorted order."""
    mapping = {node: i for i, node in enumerate(sorted(graph.nodes()))}
    return nx.relabel_nodes(graph, mapping, copy=True)


# ---------------------------------------------------------------------------
# Generators (all deterministic; all connected)
# ---------------------------------------------------------------------------


def _gen_chain(spec: TopologySpec) -> Topology:
    if spec.n < 1:
        raise ValueError(f"chain needs n >= 1, got {spec.n}")
    return Topology(spec, nx.path_graph(spec.n))


def _gen_ring(spec: TopologySpec) -> Topology:
    if spec.n < 3:
        raise ValueError(f"ring needs n >= 3, got {spec.n}")
    return Topology(spec, nx.cycle_graph(spec.n))


def _gen_mesh(spec: TopologySpec, ndim: int, *, periodic: bool) -> Topology:
    dims = spec.dims
    if len(dims) != ndim or any(d < 1 for d in dims):
        raise ValueError(
            f"{spec.family} needs {ndim} positive dims, got {dims!r}"
        )
    if periodic and any(d < 3 for d in dims):
        raise ValueError(f"torus needs every dim >= 3, got {dims!r}")
    graph = nx.grid_graph(dim=list(reversed(dims)), periodic=periodic)
    return Topology(spec, _relabel_sorted(graph))


def _gen_hypercube(spec: TopologySpec) -> Topology:
    n = spec.n
    d = max(n.bit_length() - 1, 0)
    if n < 2 or 2**d != n:
        raise ValueError(f"hypercube needs n a power of two >= 2, got {n}")
    return Topology(spec, _relabel_sorted(nx.hypercube_graph(d)))


def _gen_random_geometric(spec: TopologySpec) -> Topology:
    n, radius = spec.n, spec.radius
    if n < 2:
        raise ValueError(f"random_geometric needs n >= 2, got {n}")
    if not 0 < radius <= math.sqrt(2.0):
        raise ValueError(f"radius must be in (0, sqrt(2)], got {radius}")
    rng = spawn_generator(spec.seed, f"topology/random_geometric/{n}")
    pos = rng.uniform(0.0, 1.0, size=(n, 2))
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for u, v in itertools.combinations(range(n), 2):
        if float(np.hypot(*(pos[u] - pos[v]))) <= radius:
            graph.add_edge(u, v)
    # Stitch components together deterministically: repeatedly add the
    # globally shortest inter-component edge, so the graph is connected
    # for every seed while staying geometric in spirit.
    while True:
        comps = sorted(nx.connected_components(graph), key=min)
        if len(comps) == 1:
            break
        best: tuple[float, int, int] | None = None
        base = comps[0]
        rest = set(range(n)) - base
        for u in sorted(base):
            for v in sorted(rest):
                dist = float(np.hypot(*(pos[u] - pos[v])))
                if best is None or (dist, u, v) < best:
                    best = (dist, u, v)
        assert best is not None
        graph.add_edge(best[1], best[2])
    coords = {i: (float(pos[i, 0]), float(pos[i, 1])) for i in range(n)}
    return Topology(spec, graph, coords=coords)


def _gen_expander(spec: TopologySpec) -> Topology:
    """Seeded near-regular expander: a cycle plus random matchings.

    The cycle guarantees connectivity; each extra round adds one seeded
    matching (a shuffled pairing), so degrees lie in
    ``[2, degree]`` and the spectral gap grows with ``degree`` — the
    construction used (up to constants) by the dynamic-averaging LB
    literature for its expander test beds.
    """
    n, degree = spec.n, spec.degree
    if n < 4:
        raise ValueError(f"expander needs n >= 4, got {n}")
    if degree < 3:
        raise ValueError(f"expander needs degree >= 3, got {degree}")
    graph = nx.cycle_graph(n)
    rng = spawn_generator(spec.seed, f"topology/expander/{n}/{degree}")
    for round_ in range(degree - 2):
        perm = [int(x) for x in rng.permutation(n)]
        for i in range(0, n - 1, 2):
            u, v = perm[i], perm[i + 1]
            if u != v and not graph.has_edge(u, v):
                graph.add_edge(u, v)
    return Topology(spec, graph)


def _gen_hierarchy(spec: TopologySpec) -> Topology:
    """Multi-site hierarchy: site rings bridged by a WAN gateway mesh.

    Site ``i`` owns nodes ``[i*m, (i+1)*m)``; each site is a ring (an
    edge for ``m == 2``), its first node the *gateway*.  Gateways form a
    complete inter-site graph whose edges carry link class ``"wan"`` —
    the slow links the paper's multi-site grid pays for every inter-site
    boundary exchange.
    """
    s, m = spec.sites, spec.site_size
    if s < 2:
        raise ValueError(f"hierarchy needs sites >= 2, got {s}")
    if m < 1:
        raise ValueError(f"hierarchy needs site_size >= 1, got {m}")
    graph = nx.Graph()
    graph.add_nodes_from(range(s * m))
    link_classes: dict[tuple[int, int], str] = {}
    for i in range(s):
        base = i * m
        if m == 2:
            graph.add_edge(base, base + 1)
        elif m >= 3:
            for j in range(m):
                graph.add_edge(base + j, base + (j + 1) % m)
    for i, j in itertools.combinations(range(s), 2):
        u, v = i * m, j * m
        graph.add_edge(u, v)
        link_classes[(u, v)] = "wan"
    return Topology(spec, graph, link_classes=link_classes)


_GENERATORS = {
    "chain": _gen_chain,
    "ring": _gen_ring,
    "mesh2d": lambda spec: _gen_mesh(spec, 2, periodic=False),
    "mesh3d": lambda spec: _gen_mesh(spec, 3, periodic=False),
    "torus": lambda spec: _gen_mesh(spec, 2, periodic=True),
    "hypercube": _gen_hypercube,
    "random_geometric": _gen_random_geometric,
    "expander": _gen_expander,
    "hierarchy": _gen_hierarchy,
}


def build_topology(spec: TopologySpec) -> Topology:
    """Build the connected, integer-labelled :class:`Topology` of ``spec``."""
    return _GENERATORS[spec.family](spec)


def spec_for_family(family: str, n: int, *, seed: int = 0) -> TopologySpec:
    """A valid spec of ``family`` with node count as close to ``n`` as
    the family's structure allows (exact for the unconstrained families).

    This is how the zoo sweeps "every family at size ~n" without each
    caller re-deriving mesh boxes and hypercube dimensions.
    """
    if n < 4:
        raise ValueError(f"need n >= 4 to size every family, got {n}")
    if family in ("chain", "ring", "random_geometric", "expander"):
        return TopologySpec(family, n=n, seed=seed)
    if family == "mesh2d" or family == "torus":
        rows = max(3 if family == "torus" else 2, int(math.isqrt(n)))
        cols = max(3 if family == "torus" else 2, n // rows)
        return TopologySpec(family, n=rows * cols, seed=seed, dims=(rows, cols))
    if family == "mesh3d":
        side = max(2, round(n ** (1.0 / 3.0)))
        return TopologySpec(
            family, n=side**3, seed=seed, dims=(side, side, side)
        )
    if family == "hypercube":
        d = max(2, round(math.log2(n)))
        return TopologySpec(family, n=2**d, seed=seed)
    if family == "hierarchy":
        sites = 4 if n >= 12 else 2
        site_size = max(1, n // sites)
        return TopologySpec(
            family, n=sites * site_size, seed=seed, sites=sites,
            site_size=site_size,
        )
    raise ValueError(
        f"unknown topology family {family!r}; choose from {TOPOLOGY_FAMILIES}"
    )
