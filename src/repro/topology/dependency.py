"""Dependency graphs of block-decomposed iterations.

"The communications required for the execution of iteration (2) can be
described by means of a directed graph called the dependency graph"
(paper Section 1.1).  For the 1-D decompositions in this reproduction
the graph is a chain; the helpers here build it explicitly (as a
networkx object the balancing library can consume) and report the
statistics that justify the neighbour-local balancing design.
"""

from __future__ import annotations

import networkx as nx

__all__ = ["chain_dependency_graph", "dependency_graph_stats"]


def chain_dependency_graph(n_ranks: int) -> nx.Graph:
    """The undirected dependency graph of a chain decomposition."""
    if n_ranks < 1:
        raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
    graph = nx.path_graph(n_ranks)
    return graph


def dependency_graph_stats(graph: nx.Graph) -> dict:
    """Degree/diameter statistics of a dependency graph.

    ``max_degree`` bounds the number of simultaneous balancing partners
    of a node; ``diameter`` bounds how many migrations a component may
    need to traverse the system.
    """
    if graph.number_of_nodes() == 0:
        raise ValueError("graph is empty")
    degrees = [d for _, d in graph.degree()]
    connected = nx.is_connected(graph) if graph.number_of_nodes() > 1 else True
    return {
        "n_nodes": graph.number_of_nodes(),
        "n_edges": graph.number_of_edges(),
        "max_degree": max(degrees),
        "mean_degree": sum(degrees) / len(degrees),
        "connected": connected,
        "diameter": nx.diameter(graph) if connected else None,
    }
