"""Deterministic fault injection for the grid simulation.

``repro.faults`` models the failure modes of the paper's target
environment — the computational grid, where "the network can be cut" and
machines slow down or disappear — as declarative, seeded fault schedules
compiled into DES events.  See ``docs/faults.md``.
"""

from repro.faults.injector import FaultInjector
from repro.faults.models import (
    FAULT_TYPES,
    FaultSchedule,
    HostCrash,
    HostSlowdown,
    LatencySpike,
    LinkPartition,
    MessageDuplication,
    MessageLoss,
    MessageReordering,
    ResilienceConfig,
)

__all__ = [
    "FaultInjector",
    "FaultSchedule",
    "ResilienceConfig",
    "MessageLoss",
    "MessageDuplication",
    "MessageReordering",
    "LinkPartition",
    "HostCrash",
    "HostSlowdown",
    "LatencySpike",
    "FAULT_TYPES",
]
