"""Deterministic fault injection for the grid simulation.

``repro.faults`` models the failure modes of the paper's target
environment — the computational grid, where "the network can be cut" and
machines slow down or disappear — as declarative, seeded fault schedules
compiled into DES events.  See ``docs/faults.md``.  The corruption
family (payload/state/storage) and its detection layer are documented in
``docs/robustness.md`` ("Data integrity").
"""

from repro.faults.injector import FaultInjector
from repro.faults.models import (
    CORRUPTION_MODES,
    FAULT_TYPES,
    FaultSchedule,
    HostCrash,
    HostSlowdown,
    LatencySpike,
    LinkPartition,
    MessageDuplication,
    MessageLoss,
    MessageReordering,
    PayloadCorruption,
    ResilienceConfig,
    StateCorruption,
    StorageCorruption,
)

__all__ = [
    "FaultInjector",
    "FaultSchedule",
    "ResilienceConfig",
    "MessageLoss",
    "MessageDuplication",
    "MessageReordering",
    "LinkPartition",
    "HostCrash",
    "HostSlowdown",
    "LatencySpike",
    "PayloadCorruption",
    "StateCorruption",
    "StorageCorruption",
    "FAULT_TYPES",
    "CORRUPTION_MODES",
]
