"""Compile a :class:`~repro.faults.models.FaultSchedule` against a run.

The :class:`FaultInjector` is the single object the runtime consults
when fault injection is active.  It plays three roles:

* **compiler** — :meth:`install` turns the schedule's timed faults
  (crashes, slowdown ramps, latency spikes) into DES events that toggle
  :class:`~repro.grid.host.Host` / :class:`~repro.grid.link.Link` /
  :class:`~repro.runtime.node.GridNode` state, and spawns the heartbeat
  processes that feed peer liveness;
* **message filter** — :meth:`on_transmit` / :meth:`ack_dropped` decide,
  per wire copy, whether a transmission is dropped, duplicated or
  reordered (losses, duplication, reordering, partitions);
* **transport policy** — :meth:`retry_timeout` draws the jittered
  exponential-backoff retransmission timeouts used by
  :class:`~repro.runtime.node.GridNode`.

Every random draw comes from a named :class:`~repro.util.rng.RngTree`
stream under the schedule's seed and happens inside a deterministically
ordered DES event, so runs are byte-reproducible.  Injected fault events
are recorded as :class:`~repro.runtime.tracer.FaultRecord` entries so the
Gantt renderer can overlay them on the execution timeline.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.faults.models import (
    FaultSchedule,
    HostCrash,
    HostSlowdown,
    LatencySpike,
    LinkPartition,
    MessageDuplication,
    MessageLoss,
    MessageReordering,
    PayloadCorruption,
    StateCorruption,
    StorageCorruption,
)
from repro.integrity import corrupt_payload
from repro.runtime.message import Message
from repro.runtime.tracer import FaultRecord
from repro.util.rng import RngTree

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.solver import ChainRun
    from repro.obs.registry import MetricsRegistry
    from repro.runtime.node import GridNode

__all__ = ["FaultInjector"]

#: Counters surfaced in resilience reports, in a fixed order.
_STAT_KEYS = (
    "messages_dropped",
    "acks_dropped",
    "duplicates_injected",
    "reorders_injected",
    "dropped_at_dead_host",
    "retries",
    "sends_failed",
    "crashes",
    "restarts",
    "corruptions_injected",
    "corruptions_detected",
    "corruption_rollbacks",
)


class FaultInjector:
    """Arms a :class:`FaultSchedule` against a :class:`ChainRun`.

    Construct one injector per run (it keeps per-run RNG streams and
    counters) and attach it with :meth:`install` *before* starting the
    simulation::

        run = build_chain(problem, platform, config, model="aiac")
        FaultInjector(schedule).install(run)
        ...spawn processes, run.run()

    With an empty schedule the injector still switches every node onto
    the resilient transport (acks, retries, sequence numbers,
    heartbeats) — a useful overhead baseline.
    """

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self.resilience = schedule.resilience
        self._rng = RngTree(schedule.seed).child("faults")
        self._message_rng = self._rng.generator("messages")
        self._ack_rng = self._rng.generator("acks")
        self._crash_rng = self._rng.generator("crash-downtime")
        self.stats: dict[str, int] = {key: 0 for key in _STAT_KEYS}
        # Split the schedule by role once.
        faults = schedule.faults
        self._losses = [f for f in faults if isinstance(f, MessageLoss)]
        self._dups = [f for f in faults if isinstance(f, MessageDuplication)]
        self._reorders = [f for f in faults if isinstance(f, MessageReordering)]
        self._partitions = [f for f in faults if isinstance(f, LinkPartition)]
        self._timed = [
            f
            for f in faults
            if isinstance(f, (HostCrash, HostSlowdown, LatencySpike, StateCorruption))
        ]
        self._payload_corruptions = [
            f for f in faults if isinstance(f, PayloadCorruption)
        ]
        self._storage_corruptions = [
            f for f in faults if isinstance(f, StorageCorruption)
        ]
        has_corruption = bool(self._payload_corruptions) or any(
            isinstance(f, StateCorruption) for f in faults
        )
        #: Corruption stream exists only when a corruption fault is
        #: scheduled: the zero-corruption path makes no extra draws and
        #: stays byte-identical to the pre-integrity codebase.
        self._corrupt_rng = (
            self._rng.generator("corruption") if has_corruption else None
        )
        #: The transport consults these flags on its hot path.
        self.corrupts_payloads = bool(self._payload_corruptions)
        #: Detection layer armed: checksums stamped/verified, checkpoint
        #: CRCs enforced, plausibility guard live.  Off either because no
        #: corruption fault is scheduled (nothing to detect — zero
        #: behavioural drift) or because the scenario's escaped-corruption
        #: arm disabled it (``ResilienceConfig.integrity_checks=False``).
        self.detection_active = has_corruption and self.resilience.integrity_checks
        self.run: "ChainRun | None" = None
        self.sim = None
        self.tracer = None

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def install(self, run: "ChainRun") -> None:
        """Attach to ``run``: wire nodes, compile events, start beacons."""
        if self.run is not None:
            raise RuntimeError("FaultInjector is already installed")
        if self._storage_corruptions:
            raise ValueError(
                "StorageCorruption damages at-rest files, not a simulation "
                "run; apply it with repro.integrity.corrupt_file"
            )
        self.run = run
        self.sim = run.sim
        self.tracer = run.tracer
        run.attach_injector(self)
        self._validate_ranks(run.n_ranks)
        for fault in self._timed:
            self._compile_timed(fault)
        for fault in self._partitions:
            self.tracer.fault(
                FaultRecord(
                    kind="partition",
                    time=fault.t0,
                    t_end=fault.t1,
                    rank=None,
                    detail=(
                        f"ranks {sorted(fault.ranks_a)} | "
                        f"{sorted(fault.ranks_b)}"
                    ),
                )
            )
        period = self.resilience.heartbeat_period
        for ctx in run.ranks:
            peers = [
                n.node
                for n in (
                    run.neighbor(ctx.rank, "left"),
                    run.neighbor(ctx.rank, "right"),
                )
                if n is not None
            ]
            if peers:
                run.sim.spawn(
                    f"heartbeat-{ctx.rank}",
                    ctx.node.heartbeat_process(peers, period),
                )

    def _validate_ranks(self, n_ranks: int) -> None:
        for fault in self.schedule.faults:
            ranks: tuple[int, ...] = ()
            if isinstance(fault, (HostCrash, HostSlowdown, StateCorruption)):
                ranks = (fault.rank,)
            elif isinstance(fault, LinkPartition):
                ranks = fault.ranks_a + fault.ranks_b
            for rank in ranks:
                if not 0 <= rank < n_ranks:
                    raise ValueError(
                        f"{type(fault).__name__} names rank {rank}, but the "
                        f"run has only ranks 0..{n_ranks - 1}"
                    )

    def _compile_timed(
        self, fault: "HostCrash | HostSlowdown | LatencySpike | StateCorruption"
    ) -> None:
        sim = self.sim
        assert sim is not None and self.run is not None
        if isinstance(fault, HostCrash):
            sim.at(fault.at, self._crash, fault)
        elif isinstance(fault, StateCorruption):
            sim.at(fault.at, self._corrupt_state, fault)
        elif isinstance(fault, HostSlowdown):
            host = self.run.ranks[fault.rank].node.host
            base = host.speed
            steps = fault.ramp_steps
            span = fault.t1 - fault.t0
            for k in range(1, steps + 1):
                t = fault.t0 + span * (k - 1) / steps
                factor = 1.0 - (1.0 - fault.factor) * k / steps
                sim.at(t, self._set_speed, host, base * factor)
            sim.at(fault.t1, self._set_speed, host, base)
            self.tracer.fault(
                FaultRecord(
                    kind="slowdown",
                    time=fault.t0,
                    t_end=fault.t1,
                    rank=fault.rank,
                    detail=f"speed floor x{fault.factor:g} in {steps} step(s)",
                )
            )
        else:  # LatencySpike
            network = self.run.platform.network
            links = []
            if fault.sites is not None:
                link = network.site_link(*fault.sites)
                if link is None:
                    raise ValueError(
                        f"LatencySpike names unknown site pair {fault.sites!r}"
                    )
                links.append(link)
            else:
                links.append(network.default_link)
                links.extend(link for _, link in network.iter_site_links())
            # One link object may back several site pairs; spike each
            # object exactly once.
            unique = list({id(link): link for link in links}.values())
            originals = [link.latency for link in unique]
            sim.at(fault.t0, self._scale_latency, unique, fault.factor)
            sim.at(fault.t1, self._restore_latency, unique, originals)
            where = "all links" if fault.sites is None else "-".join(fault.sites)
            self.tracer.fault(
                FaultRecord(
                    kind="latency_spike",
                    time=fault.t0,
                    t_end=fault.t1,
                    rank=None,
                    detail=f"{where} latency x{fault.factor:g}",
                )
            )

    # ------------------------------------------------------------------
    # Timed-fault event callbacks
    # ------------------------------------------------------------------
    def _crash(self, fault: HostCrash) -> None:
        assert self.run is not None and self.sim is not None
        node = self.run.ranks[fault.rank].node
        if not node.alive:
            return  # already down; coincident crash is absorbed
        node.alive = False
        node.crash_count += 1
        self.stats["crashes"] += 1
        now = self.sim.now
        downtime = fault.downtime
        if isinstance(downtime, tuple):
            lo, hi = downtime
            downtime = lo + (hi - lo) * float(self._crash_rng.random())
        if downtime is None:
            t_end = math.inf
            detail = "no restart"
        else:
            t_end = now + downtime
            detail = f"restart after {downtime:.6g}s"
            self.sim.at(t_end, self._restart, fault.rank)
        self.tracer.fault(
            FaultRecord(
                kind="crash", time=now, t_end=t_end, rank=fault.rank,
                detail=detail,
            )
        )

    def _restart(self, rank: int) -> None:
        assert self.run is not None and self.sim is not None
        node = self.run.ranks[rank].node
        if node.alive:
            return
        node.alive = True
        self.stats["restarts"] += 1
        # Transfers whose retry timer fired during the downtime were
        # parked (a dead host must not retransmit); re-arm them now.
        node.resume_parked()
        now = self.sim.now
        self.tracer.fault(
            FaultRecord(kind="restart", time=now, t_end=now, rank=rank)
        )
        # Wake the rank's main process; it restores its last checkpoint
        # (GridNode.crash_count != RankContext.restored_epoch) and
        # resumes iterating.
        node.restart_signal.trigger(self.sim)

    def _corrupt_state(self, fault: StateCorruption) -> None:
        """Poison one rank's live block (or checkpoint) at ``fault.at``."""
        assert self.run is not None and self.sim is not None
        assert self._corrupt_rng is not None
        detail = self.run.corrupt_block(fault, self._corrupt_rng)
        if detail is None:
            return  # nothing to poison (dead host, no checkpoint yet)
        self.stats["corruptions_injected"] += 1
        now = self.sim.now
        self.tracer.fault(
            FaultRecord(
                kind="state_corruption",
                time=now,
                t_end=now,
                rank=fault.rank,
                detail=f"{fault.target}: {detail}",
            )
        )

    @staticmethod
    def _set_speed(host, speed: float) -> None:
        host.speed = speed

    @staticmethod
    def _scale_latency(links, factor: float) -> None:
        for link in links:
            link.latency *= factor

    @staticmethod
    def _restore_latency(links, originals) -> None:
        for link, latency in zip(links, originals):
            link.latency = latency

    # ------------------------------------------------------------------
    # Message filtering (called by GridNode per transmission attempt)
    # ------------------------------------------------------------------
    def on_transmit(
        self, src: "GridNode", dst: "GridNode", message: "Message"
    ) -> list[float]:
        """Fate of one transmission attempt.

        Returns the list of wire copies to schedule, as extra arrival
        delays: ``[]`` = dropped, ``[0.0]`` = normal, ``[0.0, 0.0]`` =
        duplicated, a positive entry = reordered (delay added *after*
        FIFO clamping, so the copy may overtake later traffic).
        """
        now = self.sim.now
        for fault in self._partitions:
            if fault.severs(src.rank, dst.rank, now):
                self.stats["messages_dropped"] += 1
                return []
        rng = self._message_rng
        kind = message.kind
        for fault in self._losses:
            if fault.matches(kind, now) and float(rng.random()) < fault.rate:
                self.stats["messages_dropped"] += 1
                return []
        copies = [0.0]
        for fault in self._dups:
            if fault.matches(kind, now) and float(rng.random()) < fault.rate:
                copies.append(0.0)
                self.stats["duplicates_injected"] += 1
        for fault in self._reorders:
            if fault.matches(kind, now):
                for i in range(len(copies)):
                    if float(rng.random()) < fault.rate:
                        copies[i] += float(rng.random()) * fault.max_extra_delay
                        self.stats["reorders_injected"] += 1
        return copies

    def ack_dropped(
        self, dst: "GridNode", src: "GridNode", message: "Message"
    ) -> bool:
        """Whether the ack for ``message`` (``dst`` back to ``src``) is lost.

        Acks cross the same partitions and suffer the same *unfiltered*
        losses as data (kind-restricted losses target payload kinds, not
        the ack channel).  A lost ack forces a retransmission that the
        receiver then suppresses as a duplicate.
        """
        now = self.sim.now
        for fault in self._partitions:
            if fault.severs(dst.rank, src.rank, now):
                self.stats["acks_dropped"] += 1
                return True
        for fault in self._losses:
            if (
                fault.kinds is None
                and fault.t0 <= now <= fault.t1
                and float(self._ack_rng.random()) < fault.rate
            ):
                self.stats["acks_dropped"] += 1
                return True
        return False

    def corrupt_delivery(self, message: "Message") -> "Message":
        """Maybe damage the wire copy about to be handed to the receiver.

        Consulted once per delivery when payload corruption is armed.
        Returns ``message`` unchanged (no fault fired, or the payload
        had nothing corruptible), or a payload-damaged *copy* — the
        transfer's buffered original stays pristine, so a retransmission
        after a checksum reject delivers clean data.  The copy keeps the
        original's checksum: that mismatch is exactly what the receiver
        detects.
        """
        now = self.sim.now
        rng = self._corrupt_rng
        assert rng is not None
        for fault in self._payload_corruptions:
            if fault.matches(message.kind, now) and float(rng.random()) < fault.rate:
                damaged, detail = corrupt_payload(
                    message.payload, fault.mode, fault.amplitude, rng
                )
                if detail is None:
                    return message
                self.stats["corruptions_injected"] += 1
                self.tracer.fault(
                    FaultRecord(
                        kind="payload_corruption",
                        time=now,
                        t_end=now,
                        rank=message.dst_rank,
                        detail=f"{message.kind} from {message.src_rank}: {detail}",
                    )
                )
                return Message(
                    kind=message.kind,
                    payload=damaged,
                    size_bytes=message.size_bytes,
                    src_rank=message.src_rank,
                    dst_rank=message.dst_rank,
                    send_time=message.send_time,
                    arrival_time=message.arrival_time,
                    seq=message.seq,
                    attempt=message.attempt,
                    checksum=message.checksum,
                )
        return message

    def ack_corrupted(
        self, dst: "GridNode", src: "GridNode", message: "Message"
    ) -> bool:
        """Whether the ack for ``message`` is corrupted in flight.

        Like ack loss, only *unfiltered* payload-corruption faults apply
        (kind-restricted faults target payload kinds).  With detection
        armed the sender discards the mangled ack — indistinguishable
        from a lost one, so the retransmit/dedup machinery recovers and
        the event counts as detected.  With detection off the ack is
        accepted as-is: acks carry no values, so the corruption is
        structurally masked.
        """
        if not self._payload_corruptions:
            return False
        now = self.sim.now
        rng = self._corrupt_rng
        assert rng is not None
        for fault in self._payload_corruptions:
            if (
                fault.kinds is None
                and fault.t0 <= now <= fault.t1
                and float(rng.random()) < fault.rate
            ):
                self.stats["corruptions_injected"] += 1
                if self.detection_active:
                    self.stats["corruptions_detected"] += 1
                    self.stats["acks_dropped"] += 1
                    return True
                return False
        return False

    def note_corruption_detected(self, message: "Message") -> None:
        """The receiver's checksum rejected a delivery (treated as loss)."""
        self.stats["corruptions_detected"] += 1
        now = self.sim.now
        self.tracer.fault(
            FaultRecord(
                kind="corruption_detected",
                time=now,
                t_end=now,
                rank=message.dst_rank,
                detail=f"{message.kind} from {message.src_rank} rejected",
            )
        )

    def note_corruption_recovered(self, rank: int, detail: str) -> None:
        """A detected corruption was repaired by rollback/refetch."""
        self.stats["corruption_rollbacks"] += 1
        now = self.sim.now
        self.tracer.fault(
            FaultRecord(
                kind="corruption_rollback",
                time=now,
                t_end=now,
                rank=rank,
                detail=detail,
            )
        )

    # ------------------------------------------------------------------
    # Transport policy
    # ------------------------------------------------------------------
    def retry_timeout(self, rank: int, attempt: int) -> float:
        """Jittered exponential backoff for attempt ``attempt`` of ``rank``."""
        rc = self.resilience
        u = float(self._rng.generator(f"retry/{rank}").random())
        return rc.base_timeout * rc.backoff**attempt * (1.0 + rc.jitter * u)

    def export_metrics(self, registry: "MetricsRegistry", **labels) -> None:
        """Publish the injector's counters into a metrics registry.

        Every key of :data:`_STAT_KEYS` is exported (zeros included) so
        snapshots keep the same shape whether or not faults fired.
        """
        for key in _STAT_KEYS:
            registry.counter(f"faults.{key}", **labels).add(self.stats[key])

    def note_dropped_dead(self, message: "Message") -> None:
        """A wire copy reached a crashed host and evaporated."""
        self.stats["dropped_at_dead_host"] += 1
