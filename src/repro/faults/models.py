"""Composable, declarative fault models and the schedule that groups them.

Every model is a frozen dataclass of plain numbers/strings, so a
:class:`FaultSchedule` round-trips through JSON (``to_dict`` /
``from_dict``) and can be loaded from experiment config files.  The
semantics live in :mod:`repro.faults.injector`, which compiles a
schedule against a concrete :class:`~repro.core.solver.ChainRun`.

Taxonomy (see ``docs/faults.md``)
---------------------------------
* **Message faults** — consulted per transmission attempt:
  :class:`MessageLoss`, :class:`MessageDuplication`,
  :class:`MessageReordering`, :class:`LinkPartition`.
* **Timed faults** — compiled to DES events that toggle platform state:
  :class:`HostCrash` (with optional restart after a downtime
  distribution), :class:`HostSlowdown` (stepwise ramp),
  :class:`LatencySpike`.
* **Corruption faults** (see ``docs/robustness.md``, *Data integrity*):
  :class:`PayloadCorruption` (in-flight value damage, consulted per
  delivery), :class:`StateCorruption` (in-memory block/checkpoint
  poisoning at a virtual time), :class:`StorageCorruption` (byte-level
  damage to at-rest artifacts — serve WAL, audit log, run cache; pure
  data here, applied by :func:`repro.integrity.corrupt_file`, never
  compiled into DES events).

Determinism: all randomness (loss coin flips, extra reorder delays,
downtime draws, retry jitter) comes from named
:class:`~repro.util.rng.RngTree` streams keyed by the schedule's seed,
and every draw happens inside a deterministically ordered DES event —
two runs of the same schedule and seed are byte-identical.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field, fields
from typing import Any

from repro.util.validation import (
    check_disjoint_intervals,
    check_in_range,
    check_non_negative,
    check_positive,
)

__all__ = [
    "ResilienceConfig",
    "MessageLoss",
    "MessageDuplication",
    "MessageReordering",
    "LinkPartition",
    "HostCrash",
    "HostSlowdown",
    "LatencySpike",
    "PayloadCorruption",
    "StateCorruption",
    "StorageCorruption",
    "FaultSchedule",
    "FAULT_TYPES",
    "CORRUPTION_MODES",
]


@dataclass(frozen=True)
class ResilienceConfig:
    """Tuning of the resilient transport and recovery machinery.

    Attributes
    ----------
    ack_bytes, heartbeat_bytes:
        Wire sizes of acknowledgements and liveness beacons.
    heartbeat_period:
        Virtual seconds between liveness beacons to chain neighbours.
    liveness_timeout:
        A peer unheard-of for longer is presumed dead; the load balancer
        then refuses to shed load toward it.
    base_timeout, backoff, jitter:
        Retransmission timer: attempt ``k`` waits
        ``base_timeout * backoff**k * (1 + jitter * u)`` with
        ``u ~ U[0, 1)`` from the per-rank retry stream.
    max_attempts:
        Transmission attempts before a transfer is declared failed and
        the kind's failure handler runs.
    protocol_timeout:
        Load-balancing handshake expiry: an unanswered offer (or an
        accepted offer whose data never arrives) is abandoned after this
        long, so a lost protocol message cannot wedge a rank forever.
    checkpoint_every:
        Sweeps between block-state checkpoints (crash-restart recovery
        restores the last checkpoint).  Checkpoints are also taken at
        every migration so the partition bookkeeping never rolls back.
    max_halo_staleness:
        Convergence-detection freshness gate: a rank whose halo input
        lags its neighbour's progress by more than this many sweeps
        reports an infinite residual to the oracle.  Without the gate, a
        drop-starved rank quiesces against its frozen boundary, its
        residual collapses, and detection can declare a wrong solution
        converged.
    integrity_checks:
        Arms the detection half of the data-integrity layer when a
        corruption fault is scheduled: per-message checksums
        (verify-on-receive, mismatch treated as loss so the retransmit
        path re-requests), CRC-stamped checkpoints (verified before any
        restore), and the numerical-plausibility guard.  ``False``
        measures what asynchronism *silently absorbs* — the
        escaped-corruption arm of ``repro integrity``.  With no
        corruption fault scheduled this flag is inert: checksums are
        never stamped and the fault-free byte-stream is unchanged.
    """

    ack_bytes: float = 32.0
    heartbeat_bytes: float = 16.0
    heartbeat_period: float = 5.0
    liveness_timeout: float = 15.0
    base_timeout: float = 1.0
    backoff: float = 2.0
    jitter: float = 0.2
    max_attempts: int = 5
    protocol_timeout: float = 30.0
    checkpoint_every: int = 20
    max_halo_staleness: int = 10
    integrity_checks: bool = True

    def __post_init__(self) -> None:
        check_non_negative("ack_bytes", self.ack_bytes)
        check_non_negative("heartbeat_bytes", self.heartbeat_bytes)
        check_positive("heartbeat_period", self.heartbeat_period)
        check_positive("liveness_timeout", self.liveness_timeout)
        check_positive("base_timeout", self.base_timeout)
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        check_in_range("jitter", self.jitter, 0.0, 1.0)
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        check_positive("protocol_timeout", self.protocol_timeout)
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.max_halo_staleness < 1:
            raise ValueError(
                f"max_halo_staleness must be >= 1, got {self.max_halo_staleness}"
            )


def _check_window(t0: float, t1: float) -> None:
    check_non_negative("t0", t0)
    if t1 < t0:
        raise ValueError(f"fault window must have t1 >= t0, got [{t0}, {t1}]")


def _crash_window(crash: "HostCrash") -> tuple[float, float]:
    """Conservative ``[crash, latest possible restart]`` interval."""
    downtime = crash.downtime
    if downtime is None:
        return (crash.at, math.inf)
    hi = downtime[1] if isinstance(downtime, tuple) else downtime
    return (crash.at, crash.at + hi)


@dataclass(frozen=True)
class MessageLoss:
    """Drop each transmission attempt with probability ``rate``.

    ``kinds`` restricts the fault to specific message kinds (None = all);
    the window ``[t0, t1]`` bounds it in virtual time.  Acknowledgements
    are subject to the same loss (a lost ack forces a retransmission that
    the receiver then suppresses as a duplicate).
    """

    rate: float
    t0: float = 0.0
    t1: float = math.inf
    kinds: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        check_in_range("rate", self.rate, 0.0, 1.0)
        _check_window(self.t0, self.t1)

    def matches(self, kind: str, now: float) -> bool:
        if not self.t0 <= now <= self.t1:
            return False
        return self.kinds is None or kind in self.kinds


@dataclass(frozen=True)
class MessageDuplication:
    """Deliver an extra wire copy with probability ``rate``."""

    rate: float
    t0: float = 0.0
    t1: float = math.inf
    kinds: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        check_in_range("rate", self.rate, 0.0, 1.0)
        _check_window(self.t0, self.t1)

    matches = MessageLoss.matches


@dataclass(frozen=True)
class MessageReordering:
    """Add ``U[0, max_extra_delay)`` to a message's arrival with
    probability ``rate`` — *after* FIFO clamping, so a delayed message
    can genuinely overtake or be overtaken (the out-of-order delivery
    that newest-wins sequence numbers exist to absorb)."""

    rate: float
    max_extra_delay: float
    t0: float = 0.0
    t1: float = math.inf
    kinds: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        check_in_range("rate", self.rate, 0.0, 1.0)
        check_positive("max_extra_delay", self.max_extra_delay)
        _check_window(self.t0, self.t1)

    matches = MessageLoss.matches


@dataclass(frozen=True)
class LinkPartition:
    """Total loss between two rank groups during ``[t0, t1]``.

    Models a WAN cut: every transmission (and ack) crossing the groups
    inside the window is dropped.  The resilient transport keeps
    retrying with backoff, so traffic resumes once the partition heals.
    """

    t0: float
    t1: float
    ranks_a: tuple[int, ...]
    ranks_b: tuple[int, ...]

    def __post_init__(self) -> None:
        _check_window(self.t0, self.t1)
        if not self.ranks_a or not self.ranks_b:
            raise ValueError("partition groups must be non-empty")
        if set(self.ranks_a) & set(self.ranks_b):
            raise ValueError(
                f"partition groups overlap: {self.ranks_a} / {self.ranks_b}"
            )

    def severs(self, src_rank: int, dst_rank: int, now: float) -> bool:
        if not self.t0 <= now <= self.t1:
            return False
        return (src_rank in self.ranks_a and dst_rank in self.ranks_b) or (
            src_rank in self.ranks_b and dst_rank in self.ranks_a
        )


@dataclass(frozen=True)
class HostCrash:
    """Fail-stop crash of one rank's host at ``at``.

    ``downtime`` selects the restart behaviour: ``None`` = never
    restarts; a float = deterministic downtime; ``(lo, hi)`` = downtime
    drawn from ``U[lo, hi)`` at crash time (the schedule's crash
    stream).  On restart the rank's process resumes from its last
    checkpoint; deliveries attempted during the downtime are dropped
    and recovered by the senders' retransmissions.
    """

    rank: int
    at: float
    downtime: float | tuple[float, float] | None = None

    def __post_init__(self) -> None:
        check_non_negative("rank", self.rank)
        check_non_negative("at", self.at)
        if isinstance(self.downtime, tuple):
            lo, hi = self.downtime
            check_positive("downtime lo", lo)
            if hi < lo:
                raise ValueError(f"downtime range must have hi >= lo, got {self.downtime}")
        elif self.downtime is not None:
            check_positive("downtime", self.downtime)


@dataclass(frozen=True)
class HostSlowdown:
    """Ramp one rank's host down to ``factor`` of its speed over
    ``[t0, t1]``, in ``ramp_steps`` equal steps, then restore.

    ``factor`` is the *floor* multiplier (0.25 = the host ends up 4×
    slower); intermediate steps interpolate linearly, modelling external
    load building up rather than arriving at once.
    """

    rank: int
    t0: float
    t1: float
    factor: float
    ramp_steps: int = 1

    def __post_init__(self) -> None:
        check_non_negative("rank", self.rank)
        _check_window(self.t0, self.t1)
        if self.t1 == self.t0:
            raise ValueError("slowdown window must have positive length")
        if not math.isfinite(self.t1):
            raise ValueError("slowdown window must be finite")
        check_in_range("factor", self.factor, 1e-9, 1.0)
        if self.ramp_steps < 1:
            raise ValueError(f"ramp_steps must be >= 1, got {self.ramp_steps}")


@dataclass(frozen=True)
class LatencySpike:
    """Multiply link latency by ``factor`` during ``[t0, t1]``.

    ``sites`` names one inter-site link (pair of site labels); ``None``
    spikes every registered site link *and* the default link.
    """

    t0: float
    t1: float
    factor: float
    sites: tuple[str, str] | None = None

    def __post_init__(self) -> None:
        _check_window(self.t0, self.t1)
        if not math.isfinite(self.t1):
            raise ValueError("latency spike window must be finite")
        if self.factor <= 1.0:
            raise ValueError(f"spike factor must be > 1, got {self.factor}")


#: Value-damage modes shared by the corruption fault models.
#: ``bitflip`` flips one mantissa bit of one float (a hardware upset);
#: ``perturb`` adds a relative error of size ``amplitude`` (an analog
#: glitch / torn half-write); ``truncate`` drops a payload field
#: entirely (a short read).
CORRUPTION_MODES = ("bitflip", "perturb", "truncate")


def _check_mode(mode: str, allowed: tuple[str, ...] = CORRUPTION_MODES) -> None:
    if mode not in allowed:
        raise ValueError(
            f"unknown corruption mode {mode!r}; choose from {allowed}"
        )


@dataclass(frozen=True)
class PayloadCorruption:
    """Silently damage a delivered message's values with probability
    ``rate``.

    Consulted once per *delivery* (not per transmission attempt): the
    wire copy that reaches the receiver carries corrupted numbers while
    the sender's buffered original stays pristine — exactly the fault a
    checksum + retransmit protocol can recover from.  ``kinds`` and the
    ``[t0, t1]`` window filter like :class:`MessageLoss`; ``mode``
    selects the damage (``bitflip``/``perturb``/``truncate``) and
    ``amplitude`` scales the relative error of ``perturb``.
    """

    rate: float
    t0: float = 0.0
    t1: float = math.inf
    kinds: tuple[str, ...] | None = None
    mode: str = "bitflip"
    amplitude: float = 1.0

    def __post_init__(self) -> None:
        check_in_range("rate", self.rate, 0.0, 1.0)
        _check_window(self.t0, self.t1)
        _check_mode(self.mode)
        check_positive("amplitude", self.amplitude)

    matches = MessageLoss.matches


@dataclass(frozen=True)
class StateCorruption:
    """Poison one rank's in-memory solver block (or its checkpoint) at
    virtual time ``at`` — the resident-memory upset that no transport
    checksum can see.

    ``target="state"`` damages the live block values (caught, if at
    all, by the numerical-plausibility guard); ``target="checkpoint"``
    damages the saved snapshot so a later restore would resurrect bad
    state (caught by the checkpoint CRC before any rollback).
    """

    rank: int
    at: float
    target: str = "state"
    mode: str = "perturb"
    amplitude: float = 1.0

    def __post_init__(self) -> None:
        check_non_negative("rank", self.rank)
        check_non_negative("at", self.at)
        if self.target not in ("state", "checkpoint"):
            raise ValueError(
                f"unknown state-corruption target {self.target!r}; "
                "choose from ('state', 'checkpoint')"
            )
        _check_mode(self.mode, ("bitflip", "perturb"))
        check_positive("amplitude", self.amplitude)


@dataclass(frozen=True)
class StorageCorruption:
    """Byte-level damage to an at-rest artifact: the serve WAL, the
    audit log, or a run-cache envelope.

    Unlike every other model this one never compiles into a DES event —
    :class:`~repro.faults.injector.FaultInjector` rejects a schedule
    that arms one against a run.  It is pure declarative data consumed
    by :func:`repro.integrity.corrupt_file`, which flips ``n_bytes``
    seeded random bytes (or bytes starting at ``offset`` when given) in
    the target file.
    """

    target: str
    n_bytes: int = 1
    offset: int | None = None

    def __post_init__(self) -> None:
        if self.target not in ("wal", "audit", "cache"):
            raise ValueError(
                f"unknown storage-corruption target {self.target!r}; "
                "choose from ('wal', 'audit', 'cache')"
            )
        check_positive("n_bytes", self.n_bytes)
        if self.offset is not None:
            check_non_negative("offset", self.offset)


#: Registry for (de)serialisation; keys are the ``type`` field of the
#: dict form.
FAULT_TYPES: dict[str, type] = {
    "message_loss": MessageLoss,
    "message_duplication": MessageDuplication,
    "message_reordering": MessageReordering,
    "link_partition": LinkPartition,
    "host_crash": HostCrash,
    "host_slowdown": HostSlowdown,
    "latency_spike": LatencySpike,
    "payload_corruption": PayloadCorruption,
    "state_corruption": StateCorruption,
    "storage_corruption": StorageCorruption,
}
_TYPE_NAMES = {cls: name for name, cls in FAULT_TYPES.items()}

#: Fields that JSON represents as lists but the dataclasses as tuples.
_TUPLE_FIELDS = ("kinds", "ranks_a", "ranks_b", "downtime", "sites")


@dataclass(frozen=True)
class FaultSchedule:
    """A seeded, declarative collection of fault models.

    The schedule is pure data; hand it to
    :class:`~repro.faults.injector.FaultInjector` to arm it against a
    run.  ``seed`` keys every random stream the faults (and the
    resilient transport's retry jitter) draw from.
    """

    faults: tuple[Any, ...] = ()
    seed: int = 0
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for f in self.faults:
            if type(f) not in _TYPE_NAMES:
                raise TypeError(f"unknown fault model {f!r}")
        self._check_cross_fault_consistency()

    def _check_cross_fault_consistency(self) -> None:
        """Strict whole-schedule validation (beyond per-fault checks).

        Two shapes compile into silently broken schedules and are
        rejected at construction time:

        * **overlapping crash intervals for one host** — the injector
          absorbs a crash that lands while the host is already down, so
          the second crash (and its restart) silently never happens;
        * **a partition isolating a single rank that lies entirely
          within that rank's crash window** — the cut can never be
          observed (the host is down for its whole duration and the
          partition has healed by the earliest possible restart), yet
          the schedule reads as if connectivity loss were exercised.

        Crash windows are conservative ``[at, at + max downtime]``
        intervals (``math.inf`` for no-restart crashes).
        """
        windows: dict[int, list[tuple[float, float]]] = {}
        for fault in self.faults:
            if isinstance(fault, HostCrash):
                windows.setdefault(fault.rank, []).append(_crash_window(fault))
        for rank, intervals in sorted(windows.items()):
            check_disjoint_intervals(f"rank {rank} crash", intervals)
        for fault in self.faults:
            if not isinstance(fault, LinkPartition):
                continue
            for group in (fault.ranks_a, fault.ranks_b):
                if len(group) != 1:
                    continue
                (rank,) = group
                for w0, w1 in windows.get(rank, ()):
                    if w0 <= fault.t0 and fault.t1 <= w1:
                        raise ValueError(
                            f"partition [{fault.t0:g}, {fault.t1:g}] severs "
                            f"rank {rank}'s only link but lies entirely "
                            f"within its crash window [{w0:g}, {w1:g}]; "
                            "the cut is unobservable — widen the partition "
                            "or move the crash"
                        )

    # ------------------------------------------------------------------
    # (De)serialisation — the config-file form
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "resilience": asdict(self.resilience),
            "faults": [
                {"type": _TYPE_NAMES[type(f)], **_jsonify(asdict(f))}
                for f in self.faults
            ],
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "FaultSchedule":
        resilience = ResilienceConfig(**data.get("resilience", {}))
        faults = []
        for entry in data.get("faults", []):
            entry = dict(entry)
            type_name = entry.pop("type", None)
            cls = FAULT_TYPES.get(type_name)
            if cls is None:
                raise ValueError(
                    f"unknown fault type {type_name!r}; "
                    f"choose from {sorted(FAULT_TYPES)}"
                )
            known = {f.name for f in fields(cls)}
            unknown = set(entry) - known
            if unknown:
                raise ValueError(
                    f"unknown field(s) {sorted(unknown)} for fault "
                    f"type {type_name!r}"
                )
            for key in _TUPLE_FIELDS:
                if isinstance(entry.get(key), list):
                    entry[key] = tuple(entry[key])
            faults.append(cls(**entry))
        return FaultSchedule(
            faults=tuple(faults),
            seed=int(data.get("seed", 0)),
            resilience=resilience,
        )


def _jsonify(data: dict[str, Any]) -> dict[str, Any]:
    """Make a fault model's asdict JSON-friendly (tuples -> lists)."""
    out: dict[str, Any] = {}
    for key, value in data.items():
        if isinstance(value, tuple):
            value = list(value)
        out[key] = value
    return out
