"""repro — reproduction of Bahi, Contassot-Vivier & Couturier (IPDPS 2003),
"Coupling Dynamic Load Balancing with Asynchronism in Iterative
Algorithms on the Computational Grid".

Quick tour
----------
>>> from repro import (
...     BrusselatorProblem, homogeneous_cluster,
...     SolverConfig, LBConfig, run_aiac, run_balanced_aiac,
... )
>>> problem = BrusselatorProblem(24, t_end=2.0, n_steps=20)
>>> platform = homogeneous_cluster(4, speed=5000.0)
>>> result = run_balanced_aiac(
...     problem, platform, SolverConfig(tolerance=1e-8), LBConfig(period=10)
... )
>>> result.converged
True

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.core` — AIAC solvers, load balancing, convergence detection;
* :mod:`repro.models` — the SISC / SIAC / AIAC execution-model taxonomy;
* :mod:`repro.problems` — Brusselator, heat, linear and synthetic problems;
* :mod:`repro.grid`, :mod:`repro.runtime`, :mod:`repro.des` — the
  simulated computational grid;
* :mod:`repro.balancing` — standalone non-centralized LB algorithms;
* :mod:`repro.workloads`, :mod:`repro.experiments`,
  :mod:`repro.analysis` — the evaluation harness.
"""

from repro.core import (
    LBConfig,
    RunResult,
    SolverConfig,
    run_aiac,
    run_balanced_aiac,
)
from repro.grid import (
    Host,
    Link,
    Network,
    Platform,
    homogeneous_cluster,
    multi_site_grid,
    paper_heterogeneous_grid,
)
from repro.models import run_aiac_model, run_siac, run_sisc
from repro.problems import (
    AdvectionDiffusionProblem,
    BrusselatorProblem,
    HeatProblem,
    LinearFixedPointProblem,
    SyntheticProblem,
)

__version__ = "1.0.0"

__all__ = [
    "SolverConfig",
    "LBConfig",
    "RunResult",
    "run_aiac",
    "run_balanced_aiac",
    "run_sisc",
    "run_siac",
    "run_aiac_model",
    "AdvectionDiffusionProblem",
    "BrusselatorProblem",
    "HeatProblem",
    "LinearFixedPointProblem",
    "SyntheticProblem",
    "Host",
    "Link",
    "Network",
    "Platform",
    "homogeneous_cluster",
    "multi_site_grid",
    "paper_heterogeneous_grid",
    "__version__",
]
