"""Deterministic discrete-event simulation (DES) kernel.

This package is the execution substrate that replaces the paper's real
testbed (the PM2 runtime on a 2003 computational grid).  It provides:

* :class:`~repro.des.simulator.Simulator` — the event loop with a virtual
  clock,
* :class:`~repro.des.process.Process` — generator-based cooperative
  processes (one per simulated machine / handler thread),
* :class:`~repro.des.process.Hold` / :class:`~repro.des.process.Wait` —
  the commands a process yields to consume virtual time or block on a
  :class:`~repro.des.process.Signal`,
* :mod:`~repro.des.sync` — barriers and mutexes in virtual time.

Determinism: simultaneous events are ordered by their scheduling sequence
number, so a run is a pure function of its inputs (DESIGN.md §7).
"""

from repro.des.event import EventQueue, LegacyEventQueue, ScheduledEvent
from repro.des.process import Hold, Process, ProcessDied, Signal, Wait
from repro.des.simulator import Simulator, SimulationError
from repro.des.sync import Barrier, Mutex

__all__ = [
    "EventQueue",
    "LegacyEventQueue",
    "ScheduledEvent",
    "Hold",
    "Wait",
    "Signal",
    "Process",
    "ProcessDied",
    "Simulator",
    "SimulationError",
    "Barrier",
    "Mutex",
]
