"""The simulation event loop.

:class:`Simulator` owns the virtual clock and the event queue, spawns
processes, and runs until a horizon, a stop request, or queue exhaustion.

Error policy: an exception escaping any process or scheduled callback
aborts the run and is re-raised from :meth:`Simulator.run` — silent
partial results are never produced.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Generator

from repro.des.event import EventQueue, ScheduledEvent
from repro.des.process import Process, Signal, Wait

__all__ = ["Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """A process or callback raised during the event loop."""


class Simulator:
    """Deterministic discrete-event simulator.

    Examples
    --------
    >>> from repro.des import Simulator, Hold
    >>> sim = Simulator()
    >>> log = []
    >>> def worker(sim, period, label):
    ...     for _ in range(3):
    ...         yield Hold(period)
    ...         log.append((sim.now, label))
    >>> _ = sim.spawn("a", worker(sim, 1.0, "a"))
    >>> _ = sim.spawn("b", worker(sim, 1.5, "b"))
    >>> sim.run()
    >>> log
    [(1.0, 'a'), (1.5, 'b'), (2.0, 'a'), (3.0, 'b'), (3.0, 'a'), (4.5, 'b')]

    At ``t == 3.0`` process ``b`` resumes before ``a``: simultaneous
    events fire in scheduling order, and ``b``'s resume was scheduled at
    ``t == 1.5``, before ``a``'s at ``t == 2.0``.
    """

    def __init__(self, *, queue: Any = None) -> None:
        #: ``queue`` swaps the event-queue implementation (the benchmark
        #: harness passes :class:`~repro.des.event.LegacyEventQueue` to
        #: measure the pre-optimisation baseline); the default is the
        #: bucket-indexed :class:`~repro.des.event.EventQueue`.
        self._queue = queue if queue is not None else EventQueue()
        self._now = 0.0
        self._running = False
        self._stop_requested = False
        self._failure: tuple[Process | None, BaseException] | None = None
        self.processes: list[Process] = []
        #: Optional dispatch observer (see :meth:`attach_profiler`).
        self.profiler: Any = None
        #: Dispatch telemetry: total events whose callback was invoked,
        #: and the number of same-timestamp batches they arrived in.
        self.n_dispatched = 0
        self.n_batches = 0

    def attach_profiler(self, profiler: Any) -> "Simulator":
        """Attach a profiler whose ``record(event)`` sees every dispatch.

        The profiler observes each event *before* its callback runs; it
        must not mutate simulation state.  When no profiler is attached
        (the default) the event loop takes a separate branch with zero
        per-event overhead.  Returns ``self`` for chaining.
        """
        self.profiler = profiler
        return self

    def attach_monitor(self, monitor: Any) -> "Simulator":
        """Attach a dispatch observer *on top of* any existing one.

        Unlike :meth:`attach_profiler` (which owns the single observer
        slot), this composes: the current occupant of the slot — a
        profiler, or another monitor — is stored on ``monitor.chain``
        and the monitor is expected to forward ``record(event)`` to it.
        Used by :class:`repro.guard.InvariantMonitor`, which piggybacks
        on the profiler slot so the observer-off dispatch loop stays
        bit-identical.  Returns ``self`` for chaining.
        """
        monitor.chain = self.profiler
        self.profiler = monitor
        return self

    # ------------------------------------------------------------------
    # Clock and scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def schedule_at(
        self, time: float, callback: Callable[[], Any]
    ) -> ScheduledEvent:
        """Schedule ``callback()`` at absolute virtual time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: time={time} < now={self._now}"
            )
        if not math.isfinite(time):
            raise ValueError(f"event time must be finite, got {time!r}")
        return self._queue.push(time, callback)

    def schedule_in(
        self, delay: float, callback: Callable[[], Any]
    ) -> ScheduledEvent:
        """Schedule ``callback()`` after ``delay`` units of virtual time."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay!r}")
        return self.schedule_at(self._now + delay, callback)

    def at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``.

        Like :meth:`schedule_at` but binds arguments without a closure
        and names the offending callback when ``time`` lies in the past —
        callers that compute event times (the fault injector, retry
        timers) get a clear error instead of an event that would silently
        corrupt the clock's monotonicity.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule {callback!r} in the past: "
                f"time={time} < now={self._now}"
            )
        if not math.isfinite(time):
            raise ValueError(
                f"event time for {callback!r} must be finite, got {time!r}"
            )
        return self._queue.push_call(time, callback, args)

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def spawn(self, name: str, generator: Generator[Any, Any, Any]) -> Process:
        """Start a process; its first step runs at the current time."""
        process = Process(self, name, generator)
        self.processes.append(process)
        self._schedule_resume(process, None)
        return process

    def _schedule_resume(
        self, process: Process, value: Any, delay: float = 0.0
    ) -> None:
        # Fast path: bind the resume value as an event arg instead of
        # allocating a closure per resume (this is the hottest schedule
        # call in every AIAC run — one per Hold/Signal delivery).
        self._queue.push_call(self._now + delay, process._step, (value,))

    def _process_failed(self, process: Process, exc: BaseException) -> None:
        if self._failure is None:
            self._failure = (process, exc)
        self._stop_requested = True

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request the event loop to stop after the current event."""
        self._stop_requested = True

    def run(self, until: float | None = None) -> None:
        """Run until the queue drains, ``until`` is reached, or stop().

        If ``until`` is given, the clock is advanced to exactly ``until``
        when the horizon is hit with events still pending (those events
        stay queued; ``run`` may be called again).
        """
        if self._running:
            raise SimulationError("run() called re-entrantly")
        if until is not None and until < self._now:
            raise ValueError(f"until={until} is before now={self._now}")
        self._running = True
        self._stop_requested = False
        queue = self._queue
        peek_time = queue.peek_time
        pop_at = queue.pop_at
        profiler = self.profiler
        try:
            while not self._stop_requested:
                next_time = peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                self._now = next_time
                # Batched dispatch: drain every event at this timestamp
                # (still in scheduling order — pop_at preserves the
                # (time, seq) total order) without re-checking the
                # horizon per event.  stop() keeps its "stop after the
                # current event" semantics via the inner check.  The
                # loop is duplicated so the profiler-off path carries no
                # per-event branch at all.
                event = pop_at(next_time)
                batch_n = 0
                if profiler is None:
                    while event is not None:
                        batch_n += 1
                        try:
                            event.callback(*event.args)
                        except BaseException as exc:  # noqa: BLE001 - rewrapped below
                            self._failure = (None, exc)
                            self._stop_requested = True
                            break
                        if self._stop_requested:
                            break
                        event = pop_at(next_time)
                else:
                    while event is not None:
                        batch_n += 1
                        profiler.record(event)
                        try:
                            event.callback(*event.args)
                        except BaseException as exc:  # noqa: BLE001 - rewrapped below
                            self._failure = (None, exc)
                            self._stop_requested = True
                            break
                        if self._stop_requested:
                            break
                        event = pop_at(next_time)
                self.n_dispatched += batch_n
                self.n_batches += 1
        finally:
            self._running = False
        if self._failure is not None:
            process, exc = self._failure
            self._failure = None
            where = f"process {process.name!r}" if process else "scheduled callback"
            raise SimulationError(f"{where} failed at t={self._now}: {exc!r}") from exc

    def export_metrics(self, registry: Any, **labels: Any) -> None:
        """Publish scheduler telemetry into a metrics registry.

        ``des.heap_size`` is the high-water mark of pending events,
        ``des.batch_dispatch`` the number of same-timestamp batches and
        ``des.events_dispatched`` the total events dispatched.
        """
        registry.gauge("des.heap_size", **labels).set(self._queue.peak_size)
        registry.counter("des.batch_dispatch", **labels).add(self.n_batches)
        registry.counter("des.events_dispatched", **labels).add(self.n_dispatched)

    def run_until_signal(self, signal: Signal, horizon: float | None = None) -> bool:
        """Run until ``signal`` is next triggered.

        Returns ``True`` if the signal fired, ``False`` if the queue
        drained or the horizon was reached first.  Internally spawns a
        watcher process that waits on the signal and stops the loop.
        """
        fired = False

        def watcher(sim: "Simulator"):
            nonlocal fired
            yield Wait(signal)
            fired = True
            sim.stop()

        self.spawn("_run_until_signal_watcher", watcher(self))
        self.run(until=horizon)
        return fired
