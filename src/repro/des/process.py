"""Generator-based simulated processes.

A *process* is a Python generator that yields commands to the simulator:

* ``yield Hold(duration)`` — consume ``duration`` units of virtual time
  (e.g. a block of computation whose length the platform model decided);
* ``yield Wait(signal)`` — block until ``signal`` is triggered; the
  ``yield`` expression evaluates to the payload passed to
  :meth:`Signal.trigger`;
* ``yield None`` — yield control, resuming at the same virtual time after
  already-scheduled simultaneous events (a cooperative "checkpoint").

Processes share memory freely — exactly like the PM2 handler threads of
the paper — but are never preempted between yields, so state mutations
within one step are atomic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.des.simulator import Simulator

__all__ = ["Hold", "Wait", "Signal", "Process", "ProcessDied"]


class Hold:
    """Command: advance this process by ``duration`` of virtual time.

    Treat instances as immutable — one is allocated per yield on the
    hottest path of every simulation, so this is a hand-rolled
    ``__slots__`` class rather than a dataclass.
    """

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"Hold duration must be >= 0, got {duration!r}")
        self.duration = duration

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Hold(duration={self.duration!r})"

    def __eq__(self, other: object) -> bool:
        if other.__class__ is Hold:
            return self.duration == other.duration  # type: ignore[union-attr]
        return NotImplemented

    def __hash__(self) -> int:
        return hash((Hold, self.duration))


class Wait:
    """Command: block until ``signal`` is triggered."""

    __slots__ = ("signal",)

    def __init__(self, signal: "Signal") -> None:
        self.signal = signal

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Wait(signal={self.signal!r})"

    def __eq__(self, other: object) -> bool:
        if other.__class__ is Wait:
            return self.signal is other.signal  # type: ignore[union-attr]
        return NotImplemented

    def __hash__(self) -> int:
        return hash((Wait, id(self.signal)))


class Signal:
    """A triggerable condition that processes can wait on.

    Each :meth:`trigger` wakes every process currently waiting; processes
    that start waiting afterwards wait for the *next* trigger.  A payload
    passed to :meth:`trigger` becomes the value of the waiting process's
    ``yield`` expression.
    """

    __slots__ = ("name", "_waiters", "trigger_count")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: list[Process] = []
        self.trigger_count = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Signal({self.name!r}, waiters={len(self._waiters)})"

    @property
    def n_waiting(self) -> int:
        return len(self._waiters)

    def _add_waiter(self, process: "Process") -> None:
        self._waiters.append(process)

    def trigger(self, sim: "Simulator", payload: Any = None) -> int:
        """Wake all current waiters at the current virtual time.

        Returns the number of processes woken.  Wake-ups are scheduled as
        events (not run inline) so triggering from inside a handler keeps
        the deterministic event order.
        """
        self.trigger_count += 1
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            sim._schedule_resume(process, payload)
        return len(waiters)


class ProcessDied(RuntimeError):
    """Raised when interacting with a process that terminated with an error."""


class Process:
    """A running simulated process.

    Not constructed directly — use :meth:`repro.des.Simulator.spawn`.
    """

    __slots__ = ("sim", "name", "_generator", "alive", "error", "result", "done")

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        generator: Generator[Any, Any, Any],
    ) -> None:
        self.sim = sim
        self.name = name
        self._generator = generator
        self.alive = True
        self.error: BaseException | None = None
        self.result: Any = None
        #: Signal triggered (with the process return value) on termination.
        self.done = Signal(f"done:{name}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else "dead"
        return f"Process({self.name!r}, {state})"

    def _step(self, send_value: Any) -> None:
        """Advance the generator one command and interpret the result."""
        try:
            command = self._generator.send(send_value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as exc:
            self.alive = False
            self.error = exc
            self.sim._process_failed(self, exc)
            return

        # Hot path: exact-class checks and a direct queue push (the
        # equivalent of Simulator._schedule_resume without the extra
        # call) — this runs once per event in every simulation.
        cls = command.__class__
        sim = self.sim
        if command is None:
            sim._queue.push_call(sim._now, self._step, (None,))
        elif cls is Hold or isinstance(command, Hold):
            sim._queue.push_call(
                sim._now + command.duration, self._step, (None,)
            )
        elif cls is Wait or isinstance(command, Wait):
            command.signal._add_waiter(self)
        else:
            exc = TypeError(
                f"process {self.name!r} yielded {command!r}; "
                "expected Hold, Wait, or None"
            )
            self.alive = False
            self.error = exc
            self.sim._process_failed(self, exc)

    def _finish(self, result: Any) -> None:
        self.alive = False
        self.result = result
        self.done.trigger(self.sim, result)
