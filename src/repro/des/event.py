"""Event records and the time-ordered event queue.

Two queue implementations share one API and one total order:

* :class:`EventQueue` — the default, a *bucket-indexed* queue: a binary
  heap of **distinct** timestamps plus a dict mapping each timestamp to
  its bucket of events in scheduling order.  Pushing into an existing
  timestamp is O(1) (dict hit + list append) and draining a same-time
  batch costs O(1) per event, so the scheduler stays flat as pending
  events grow to millions — the heap only sees one entry per distinct
  time, not one per event.
* :class:`LegacyEventQueue` — the original flat binary heap keyed by
  ``(time, seq)``.  Kept as the honest pre-optimisation baseline for
  ``benchmarks/bench_scale.py`` and as an oracle in the DES tests.

Both resolve virtual-time ties by ``seq``, a monotonically increasing
scheduling counter, which makes every simulation run deterministic:
there is no dependence on hash ordering, thread timing or allocation
addresses.  The bucket-indexed queue preserves the exact ``(time, seq)``
total order of the legacy heap — buckets are appended in ``seq`` order
because ``seq`` is assigned at push time — so switching queues is
bit-invisible to any simulation (fingerprint-pinned in the test suite).

Hot-path design notes:

* :class:`ScheduledEvent` is a plain ``__slots__`` class carrying a
  ``(callback, args)`` pair, so schedulers never need to allocate a
  closure just to bind arguments (see ``Simulator._schedule_resume``).
* Cancelled events are tombstones skipped lazily on pop — but the queue
  counts them, reports only *live* events from ``len()``, and compacts
  itself once tombstones dominate, so a cancel-heavy workload cannot
  grow the queue without bound.
* A timestamp whose bucket was fully drained can be re-created by a
  later push at the same time; the stale heap entry left behind by the
  first incarnation is skipped lazily (the ``bucket is None`` branch).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

__all__ = ["ScheduledEvent", "EventQueue", "LegacyEventQueue"]

#: Compaction policy: rebuild the queue once more than this many
#: tombstones accumulate *and* they outnumber live events.
_COMPACT_MIN_CANCELLED = 64


class ScheduledEvent:
    """A callback scheduled at a point in virtual time.

    Attributes
    ----------
    time:
        Virtual time at which the callback fires.
    seq:
        Scheduling sequence number; breaks ties among simultaneous events.
    callback:
        Callable invoked by the simulator as ``callback(*args)``.
    args:
        Arguments bound at scheduling time (avoids per-event closures).
    cancelled:
        Cancelled events stay queued but are skipped on pop.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple[Any, ...] = (),
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._queue: "EventQueue | LegacyEventQueue | None" = None

    def cancel(self) -> None:
        """Mark the event so the simulator skips it."""
        if not self.cancelled:
            self.cancelled = True
            queue = self._queue
            if queue is not None:
                queue._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"ScheduledEvent(time={self.time!r}, seq={self.seq}{state})"


class EventQueue:
    """Deterministic bucket-indexed priority queue of :class:`ScheduledEvent`.

    ``_times`` is a heap of distinct timestamps; ``_buckets`` maps each
    timestamp to its events in scheduling (= ``seq``) order, and
    ``_heads`` to the index of the first unconsumed event in that
    bucket.  ``peak_size`` tracks the high-water mark of live events
    (the ``des.heap_size`` telemetry gauge).
    """

    __slots__ = (
        "_times",
        "_buckets",
        "_heads",
        "_count",
        "_size",
        "_n_cancelled",
        "peak_size",
    )

    def __init__(self) -> None:
        self._times: list[float] = []
        self._buckets: dict[float, list[ScheduledEvent]] = {}
        self._heads: dict[float, int] = {}
        self._count = 0
        self._size = 0  # queued events not yet consumed, incl. tombstones
        self._n_cancelled = 0
        self.peak_size = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) events."""
        return self._size - self._n_cancelled

    def push(self, time: float, callback: Callable[[], Any]) -> ScheduledEvent:
        """Schedule ``callback()`` at ``time`` and return its event record."""
        return self.push_call(time, callback, ())

    def push_call(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple[Any, ...],
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at ``time`` (no closure needed)."""
        seq = self._count
        self._count = seq + 1
        event = ScheduledEvent(time, seq, callback, args)
        event._queue = self
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [event]
            self._heads[time] = 0
            heapq.heappush(self._times, time)
        else:
            bucket.append(event)
        size = self._size + 1
        self._size = size
        live = size - self._n_cancelled
        if live > self.peak_size:
            self.peak_size = live
        return event

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------
    def _live_head(self) -> ScheduledEvent | None:
        """Advance to the earliest live event; leave it queued.

        Skips tombstones (decrementing counters), drops exhausted
        buckets and the stale duplicate heap times a drained-then-
        re-created bucket leaves behind.
        """
        times = self._times
        buckets = self._buckets
        heads = self._heads
        while times:
            t = times[0]
            bucket = buckets.get(t)
            if bucket is None:  # stale entry from a drained bucket
                heapq.heappop(times)
                continue
            pos = heads[t]
            n = len(bucket)
            while pos < n:
                event = bucket[pos]
                if not event.cancelled:
                    heads[t] = pos
                    return event
                bucket[pos] = None  # type: ignore[call-overload]
                pos += 1
                self._n_cancelled -= 1
                self._size -= 1
            del buckets[t]
            del heads[t]
            heapq.heappop(times)
        return None

    def _consume(self, event: ScheduledEvent) -> ScheduledEvent:
        """Remove the event returned by :meth:`_live_head` from the queue."""
        t = event.time
        bucket = self._buckets[t]
        pos = self._heads[t] + 1
        if pos < len(bucket):
            self._heads[t] = pos
        else:
            del self._buckets[t]
            del self._heads[t]
            heapq.heappop(self._times)
        self._size -= 1
        event._queue = None  # cancel() after pop must not miscount
        return event

    def pop(self) -> ScheduledEvent | None:
        """Return the next non-cancelled event, or ``None`` if empty."""
        event = self._live_head()
        if event is None:
            return None
        return self._consume(event)

    def pop_at(self, time: float) -> ScheduledEvent | None:
        """Pop the next event only if it fires at exactly ``time``.

        The simulator's batched dispatch uses this to drain all
        simultaneous events without re-checking its horizon per event;
        events at later times are left queued and ``None`` is returned.
        """
        event = self._live_head()
        if event is None or event.time != time:
            return None
        return self._consume(event)

    def peek_time(self) -> float | None:
        """Return the time of the next non-cancelled event without popping."""
        event = self._live_head()
        return None if event is None else event.time

    # ------------------------------------------------------------------
    # Tombstone bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        self._n_cancelled += 1
        n = self._n_cancelled
        if n > _COMPACT_MIN_CANCELLED and 2 * n > self._size:
            self.compact()

    def compact(self) -> None:
        """Drop tombstones and rebuild the time index.

        Removing cancelled entries cannot change the pop order of the
        survivors — the ``(time, seq)`` key is a total order — so this
        is invisible to the simulation.
        """
        buckets = self._buckets
        heads = self._heads
        for t in list(buckets):
            live = [e for e in buckets[t][heads[t] :] if not e.cancelled]
            if live:
                buckets[t] = live
                heads[t] = 0
            else:
                del buckets[t]
                del heads[t]
        self._times = list(buckets)
        heapq.heapify(self._times)
        self._size = sum(len(b) for b in buckets.values())
        self._n_cancelled = 0


class LegacyEventQueue:
    """The original flat-heap queue, kept as the pre-optimisation baseline.

    One ``(time, seq, event)`` heap entry per event: every push and pop
    pays an O(log n_pending) sift.  ``benchmarks/bench_scale.py`` runs
    the reference simulations against this queue to measure the
    indexed queue's events/sec honestly, and the DES tests use it as a
    differential oracle for pop order.
    """

    __slots__ = ("_heap", "_count", "_n_cancelled", "peak_size")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, ScheduledEvent]] = []
        self._count = 0
        self._n_cancelled = 0
        self.peak_size = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) events."""
        return len(self._heap) - self._n_cancelled

    def push(self, time: float, callback: Callable[[], Any]) -> ScheduledEvent:
        """Schedule ``callback()`` at ``time`` and return its event record."""
        return self.push_call(time, callback, ())

    def push_call(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple[Any, ...],
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at ``time`` (no closure needed)."""
        seq = self._count
        self._count = seq + 1
        event = ScheduledEvent(time, seq, callback, args)
        event._queue = self
        heapq.heappush(self._heap, (time, seq, event))
        live = len(self._heap) - self._n_cancelled
        if live > self.peak_size:
            self.peak_size = live
        return event

    def pop(self) -> ScheduledEvent | None:
        """Return the next non-cancelled event, or ``None`` if empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[2]
            if not event.cancelled:
                event._queue = None  # cancel() after pop must not miscount
                return event
            self._n_cancelled -= 1
        return None

    def pop_at(self, time: float) -> ScheduledEvent | None:
        """Pop the next event only if it fires at exactly ``time``."""
        heap = self._heap
        while heap:
            if heap[0][0] != time:
                return None
            event = heapq.heappop(heap)[2]
            if not event.cancelled:
                event._queue = None
                return event
            self._n_cancelled -= 1
        return None

    def peek_time(self) -> float | None:
        """Return the time of the next non-cancelled event without popping."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[2].cancelled:
                heapq.heappop(heap)
                self._n_cancelled -= 1
                continue
            return entry[0]
        return None

    # ------------------------------------------------------------------
    # Tombstone bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        self._n_cancelled += 1
        n = self._n_cancelled
        if n > _COMPACT_MIN_CANCELLED and 2 * n > len(self._heap):
            self.compact()

    def compact(self) -> None:
        """Drop tombstones and re-heapify, in place."""
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[2].cancelled]
        heapq.heapify(heap)
        self._n_cancelled = 0
