"""Event records and the time-ordered event queue.

The queue is a binary heap keyed by ``(time, seq)`` where ``seq`` is a
monotonically increasing scheduling counter.  Ties in virtual time are
therefore resolved in scheduling order, which makes every simulation run
deterministic: there is no dependence on hash ordering, thread timing or
allocation addresses.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["ScheduledEvent", "EventQueue"]


@dataclass(slots=True)
class ScheduledEvent:
    """A callback scheduled at a point in virtual time.

    Attributes
    ----------
    time:
        Virtual time at which the callback fires.
    seq:
        Scheduling sequence number; breaks ties among simultaneous events.
    callback:
        Zero-argument callable invoked by the simulator; arguments are
        bound at scheduling time (see :meth:`EventQueue.push`).
    cancelled:
        Cancelled events stay in the heap but are skipped on pop.
    """

    time: float
    seq: int
    callback: Callable[[], Any]
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it."""
        self.cancelled = True


class EventQueue:
    """Deterministic priority queue of :class:`ScheduledEvent`."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, ScheduledEvent]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, callback: Callable[[], Any]) -> ScheduledEvent:
        """Schedule ``callback`` at ``time`` and return its event record."""
        event = ScheduledEvent(time=time, seq=next(self._counter), callback=callback)
        heapq.heappush(self._heap, (event.time, event.seq, event))
        return event

    def pop(self) -> ScheduledEvent | None:
        """Return the next non-cancelled event, or ``None`` if empty."""
        while self._heap:
            _, _, event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Return the time of the next non-cancelled event without popping."""
        while self._heap:
            _, _, event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            return event.time
        return None
