"""Event records and the time-ordered event queue.

The queue is a binary heap keyed by ``(time, seq)`` where ``seq`` is a
monotonically increasing scheduling counter.  Ties in virtual time are
therefore resolved in scheduling order, which makes every simulation run
deterministic: there is no dependence on hash ordering, thread timing or
allocation addresses.

Hot-path design notes:

* :class:`ScheduledEvent` is a plain ``__slots__`` class carrying a
  ``(callback, args)`` pair, so schedulers never need to allocate a
  closure just to bind arguments (see ``Simulator._schedule_resume``).
* Heap entries stay ``(time, seq, event)`` tuples: tuple comparison runs
  in C, which beats dispatching a Python ``__lt__`` per sift step.
* Cancelled events are tombstones skipped lazily on pop — but the queue
  counts them, reports only *live* events from ``len()``, and compacts
  the heap in place once tombstones dominate, so a cancel-heavy workload
  cannot grow the heap without bound.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

__all__ = ["ScheduledEvent", "EventQueue"]

#: Compaction policy: rebuild the heap once more than this many
#: tombstones accumulate *and* they outnumber live events.
_COMPACT_MIN_CANCELLED = 64


class ScheduledEvent:
    """A callback scheduled at a point in virtual time.

    Attributes
    ----------
    time:
        Virtual time at which the callback fires.
    seq:
        Scheduling sequence number; breaks ties among simultaneous events.
    callback:
        Callable invoked by the simulator as ``callback(*args)``.
    args:
        Arguments bound at scheduling time (avoids per-event closures).
    cancelled:
        Cancelled events stay in the heap but are skipped on pop.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple[Any, ...] = (),
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._queue: "EventQueue | None" = None

    def cancel(self) -> None:
        """Mark the event so the simulator skips it."""
        if not self.cancelled:
            self.cancelled = True
            queue = self._queue
            if queue is not None:
                queue._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"ScheduledEvent(time={self.time!r}, seq={self.seq}{state})"


class EventQueue:
    """Deterministic priority queue of :class:`ScheduledEvent`."""

    __slots__ = ("_heap", "_count", "_n_cancelled")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, ScheduledEvent]] = []
        self._count = 0
        self._n_cancelled = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) events."""
        return len(self._heap) - self._n_cancelled

    def push(self, time: float, callback: Callable[[], Any]) -> ScheduledEvent:
        """Schedule ``callback()`` at ``time`` and return its event record."""
        return self.push_call(time, callback, ())

    def push_call(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple[Any, ...],
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at ``time`` (no closure needed)."""
        seq = self._count
        self._count = seq + 1
        event = ScheduledEvent(time, seq, callback, args)
        event._queue = self
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def pop(self) -> ScheduledEvent | None:
        """Return the next non-cancelled event, or ``None`` if empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[2]
            if not event.cancelled:
                event._queue = None  # cancel() after pop must not miscount
                return event
            self._n_cancelled -= 1
        return None

    def pop_at(self, time: float) -> ScheduledEvent | None:
        """Pop the next event only if it fires at exactly ``time``.

        The simulator's batched dispatch uses this to drain all
        simultaneous events without re-checking its horizon per event;
        events at later times are left queued and ``None`` is returned.
        """
        heap = self._heap
        while heap:
            if heap[0][0] != time:
                return None
            event = heapq.heappop(heap)[2]
            if not event.cancelled:
                event._queue = None
                return event
            self._n_cancelled -= 1
        return None

    def peek_time(self) -> float | None:
        """Return the time of the next non-cancelled event without popping."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[2].cancelled:
                heapq.heappop(heap)
                self._n_cancelled -= 1
                continue
            return entry[0]
        return None

    # ------------------------------------------------------------------
    # Tombstone bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        self._n_cancelled += 1
        n = self._n_cancelled
        if n > _COMPACT_MIN_CANCELLED and 2 * n > len(self._heap):
            self.compact()

    def compact(self) -> None:
        """Drop tombstones and re-heapify, in place.

        Removing cancelled entries cannot change the pop order of the
        survivors — the ``(time, seq)`` key is a total order — so this
        is invisible to the simulation.  The list object is reused so
        any alias held by a running event loop stays valid.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[2].cancelled]
        heapq.heapify(heap)
        self._n_cancelled = 0
