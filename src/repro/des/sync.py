"""Synchronisation primitives in virtual time.

Only what the execution models need:

* :class:`Mutex` — used to model the paper's per-channel "communication in
  progress" exclusion (Algorithm 1/4) in its *non-blocking* form, and by
  the SISC driver in its blocking form.
* :class:`Barrier` — the global synchronisation of SISC iterations.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.des.process import Signal

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.simulator import Simulator

__all__ = ["Mutex", "Barrier"]


class Mutex:
    """A mutual-exclusion flag with FIFO hand-off.

    ``try_acquire`` is the non-blocking test the AIAC algorithms use
    ("if there is no left communication in progress then ...").  A
    blocking acquire is done by waiting on the signal returned from
    :meth:`acquire_signal` when ``try_acquire`` failed.
    """

    __slots__ = ("name", "locked", "_waiters")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.locked = False
        self._waiters: deque[Signal] = deque()

    def try_acquire(self) -> bool:
        """Acquire if free; return whether the lock was taken."""
        if self.locked:
            return False
        self.locked = True
        return True

    def acquire_signal(self) -> Signal:
        """Register a waiter; the signal fires when the lock is handed over.

        The lock is *already held* by the waiter when its signal fires —
        do not call :meth:`try_acquire` again.
        """
        signal = Signal(f"mutex:{self.name}")
        self._waiters.append(signal)
        return signal

    def release(self, sim: "Simulator") -> None:
        """Release, handing the lock to the oldest waiter if any."""
        if not self.locked:
            raise RuntimeError(f"mutex {self.name!r} released while not held")
        if self._waiters:
            # Hand-off: the lock stays locked, ownership moves.
            self._waiters.popleft().trigger(sim)
        else:
            self.locked = False


class Barrier:
    """A reusable barrier for ``parties`` processes.

    Each participant calls :meth:`arrive` and waits on the returned
    signal; the last arrival releases everyone and resets the barrier
    for the next generation (the classic cyclic barrier).
    """

    __slots__ = ("name", "parties", "_arrived", "_signal", "generation")

    def __init__(self, parties: int, name: str = "") -> None:
        if parties < 1:
            raise ValueError(f"parties must be >= 1, got {parties}")
        self.name = name
        self.parties = parties
        self._arrived = 0
        self._signal = Signal(f"barrier:{name}")
        self.generation = 0

    def arrive(self, sim: "Simulator") -> Signal | None:
        """Register arrival.

        Returns the signal to wait on, or ``None`` when this arrival was
        the last of the generation (the caller must *not* wait; everyone
        else has been released).
        """
        self._arrived += 1
        if self._arrived >= self.parties:
            self._arrived = 0
            self.generation += 1
            released, self._signal = self._signal, Signal(f"barrier:{self.name}")
            released.trigger(sim)
            return None
        return self._signal
