"""Scenario builders for every experiment in DESIGN.md §4.

Each scenario is a dataclass of *tuned, frozen* parameters with methods
producing fresh problem / platform / config objects, so that a benchmark
and a reduced-size integration test build exactly the same set-up.

Why the Figure 5 scenario uses the synthetic problem
----------------------------------------------------
The paper attributes its homogeneous-cluster gain to the evolution of
the computation: "the progression towards the solution is not the same
for all the components ... it is then possible to enhance the
repartition of the actually evolving computations" (§2).  Measuring our
Brusselator waveform relaxation shows per-component Newton work almost
uniform at these sizes (max/mean ≈ 1.03 across blocks), so the activity
concentration that drives the paper's 6.8× must have been much stronger
in their setting (their inner Solve can skip converged work entirely).
The synthetic problem models exactly that mechanism with controllable
strength; the Brusselator remains the correctness vehicle (Table 1 and
all solver tests run it) and ``bench_ablations`` measures its real
(weaker) activity spread.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import LBConfig, SolverConfig
from repro.grid.platform import Platform, homogeneous_cluster
from repro.problems.brusselator import BrusselatorProblem
from repro.problems.synthetic import SyntheticProblem
from repro.topology.logical import interleaved_sites_order
from repro.util.rng import RngTree

__all__ = [
    "Figure5Scenario",
    "IntegrityScenario",
    "ScaleScenario",
    "Table1Scenario",
    "ModelsComparisonScenario",
    "TraceFigureScenario",
    "ResilienceScenario",
    "SoakScenario",
]


@dataclass(frozen=True)
class Figure5Scenario:
    """Figure 5: homogeneous cluster, time vs #procs, with/without LB.

    Strong scaling of a fixed problem whose activity concentrates in a
    hard region (an eighth of the domain, converging ~60× more slowly),
    on a dedicated cluster with a fast LAN.
    """

    n_components: int = 1024
    hard_region: tuple[float, float] = (0.3125, 0.4375)
    easy_rate: float = 0.5
    hard_rate: float = 0.97
    active_cost: float = 30.0
    tolerance: float = 1e-10
    host_speed: float = 200.0
    proc_counts: tuple[int, ...] = (4, 8, 16, 32, 64)
    #: Which problem drives the sweep: ``"synthetic"`` (default; see the
    #: module docstring) or ``"brusselator"`` (``repro figure5
    #: --problem brusselator``) — the real PDE numerics with adaptive
    #: skipping as the activity mechanism.
    problem_kind: str = "synthetic"
    #: Brusselator knobs (``problem_kind="brusselator"`` only).  ``alpha``
    #: is derived from ``coupling``: the waveform relaxation contracts at
    #: ``ρ = 2cδt/(1+2cδt)`` with ``c·δt = coupling``, so the sweep count
    #: stays N-independent instead of degenerating as (N+1)² grows.
    t_end: float = 10.0
    n_steps: int = 40
    coupling: float = 0.4

    def brusselator_alpha(self) -> float:
        """Diffusion ``α`` giving ``c·δt = coupling`` at this ``N``."""
        return (
            self.coupling
            * self.n_steps
            / (self.t_end * (self.n_components + 1) ** 2)
        )

    def problem(self) -> SyntheticProblem | BrusselatorProblem:
        if self.problem_kind == "synthetic":
            return SyntheticProblem.with_hard_region(
                self.n_components,
                easy_rate=self.easy_rate,
                hard_rate=self.hard_rate,
                region=self.hard_region,
                active_cost=self.active_cost,
                active_threshold=100.0 * self.tolerance,
            )
        if self.problem_kind == "brusselator":
            # skip_converged is the Brusselator's native activity
            # mechanism (converged components verify cheaply / skip);
            # the threshold sits two decades above the tolerance, same
            # margin as the synthetic active_threshold.
            return BrusselatorProblem(
                self.n_components,
                t_end=self.t_end,
                n_steps=self.n_steps,
                alpha=self.brusselator_alpha(),
                skip_converged=True,
                skip_threshold=100.0 * self.tolerance,
            )
        raise ValueError(
            f"unknown problem_kind {self.problem_kind!r}; "
            "choose 'synthetic' or 'brusselator'"
        )

    def platform(self, n_procs: int) -> Platform:
        return homogeneous_cluster(n_procs, speed=self.host_speed)

    def solver_config(self, *, trace: bool = False) -> SolverConfig:
        return SolverConfig(
            tolerance=self.tolerance, max_iterations=500_000, trace=trace
        )

    def lb_config(self) -> LBConfig:
        return LBConfig(
            period=5,
            threshold_ratio=3.0,
            min_components=2,
            accuracy=1.0,
            max_fraction=0.5,
        )

    @classmethod
    def quick(cls) -> "Figure5Scenario":
        """Reduced size for fast benchmark runs (seconds, not minutes)."""
        return cls(
            n_components=256,
            proc_counts=(4, 8, 16),
            hard_rate=0.9,
            tolerance=1e-8,
        )

    @classmethod
    def tiny(cls) -> "Figure5Scenario":
        """Smallest meaningful instance, for the integration tests."""
        return cls(
            n_components=128,
            proc_counts=(4, 8),
            hard_rate=0.85,
            tolerance=1e-6,
        )

    @classmethod
    def scale(cls) -> "Figure5Scenario":
        """``repro figure5 --scale``: the same curves out to 1024 ranks.

        The problem grows with the top of the sweep (128 components per
        rank at p=1024) so the largest point still has meaningful local
        blocks; the tolerance is relaxed one notch to keep sweep counts
        — and therefore event counts — tractable at this width.  This
        preset is an explicit opt-in: the balanced arm still runs the
        event-driven AIAC+LB solver, so expect minutes, not seconds.
        """
        return cls(
            n_components=131_072,
            proc_counts=(64, 128, 256, 512, 1024),
            hard_rate=0.9,
            tolerance=1e-8,
        )

    @classmethod
    def scale_brusselator(cls) -> "Figure5Scenario":
        """``repro figure5 --scale --problem brusselator``.

        The scale sweep on the real PDE numerics.  The component count
        drops an order of magnitude from the synthetic scale preset:
        every Brusselator component carries a full ``(2, n_steps + 1)``
        trajectory and a per-sweep Newton solve, so the synthetic size
        would move the cost from the scheduler (what the sweep measures)
        to the numpy kernels.
        """
        return cls(
            n_components=16_384,
            proc_counts=(64, 128, 256, 512, 1024),
            tolerance=1e-8,
            problem_kind="brusselator",
        )


@dataclass(frozen=True)
class ScaleScenario:
    """Large-N scaling instances for the lockstep SISC replay.

    A ranks × components grid point: a homogeneous cluster (the replay
    models SISC, whose rounds are closed-form there) and the synthetic
    activity-concentration problem partitioned evenly (``n_components``
    is always ``components_per_rank * n_ranks``, so blocks never go
    empty and the batched sweeper's tiling stays rectangular).  Used by
    ``benchmarks/bench_scale.py`` and the CI scale smoke; tracing is off
    — per-event records at 10⁶+ events are exactly the memory profile
    this scenario exists to avoid.
    """

    n_ranks: int = 256
    components_per_rank: int = 512
    easy_rate: float = 0.5
    hard_rate: float = 0.9
    hard_region: tuple[float, float] = (0.4, 0.6)
    tolerance: float = 1e-8
    host_speed: float = 1000.0
    max_iterations: int = 500_000
    #: ``"synthetic"`` (default) or ``"brusselator"``: the real PDE
    #: numerics through the same lockstep/event-driven ladder.
    problem_kind: str = "synthetic"
    #: Brusselator knobs; ``alpha`` derives from ``coupling`` exactly as
    #: in :meth:`Figure5Scenario.brusselator_alpha`, keeping the sweep
    #: count N-independent across grid points.
    t_end: float = 10.0
    n_steps: int = 40
    coupling: float = 0.4

    @property
    def n_components(self) -> int:
        return self.n_ranks * self.components_per_rank

    def brusselator_alpha(self) -> float:
        """Diffusion ``α`` giving ``c·δt = coupling`` at this ``N``."""
        return (
            self.coupling
            * self.n_steps
            / (self.t_end * (self.n_components + 1) ** 2)
        )

    def problem(self) -> SyntheticProblem | BrusselatorProblem:
        if self.problem_kind == "synthetic":
            return SyntheticProblem.with_hard_region(
                self.n_components,
                easy_rate=self.easy_rate,
                hard_rate=self.hard_rate,
                region=self.hard_region,
            )
        if self.problem_kind == "brusselator":
            return BrusselatorProblem(
                self.n_components,
                t_end=self.t_end,
                n_steps=self.n_steps,
                alpha=self.brusselator_alpha(),
                skip_converged=True,
                skip_threshold=100.0 * self.tolerance,
            )
        raise ValueError(
            f"unknown problem_kind {self.problem_kind!r}; "
            "choose 'synthetic' or 'brusselator'"
        )

    def platform(self) -> Platform:
        return homogeneous_cluster(self.n_ranks, speed=self.host_speed)

    def solver_config(self) -> SolverConfig:
        return SolverConfig(
            tolerance=self.tolerance,
            max_iterations=self.max_iterations,
            trace=False,
        )

    @classmethod
    def smoke(cls) -> "ScaleScenario":
        """The CI scale-smoke point: 256 ranks, ~10⁵ components."""
        return cls(n_ranks=256, components_per_rank=400)

    @classmethod
    def flagship(cls) -> "ScaleScenario":
        """The headline BENCH_scale point: 1024 ranks, >10⁶ components."""
        return cls(n_ranks=1024, components_per_rank=1024)

    @classmethod
    def brusselator_smoke(cls) -> "ScaleScenario":
        """CI scale-smoke on the real PDE: 256 ranks, small blocks."""
        return cls(problem_kind="brusselator", n_ranks=256,
                   components_per_rank=4)

    @classmethod
    def brusselator_gate(cls) -> "ScaleScenario":
        """The ``--check``-gated Brusselator point: 1024 ranks × 4.

        Tiny per-rank blocks keep the round scheduler-bound, so the
        gate measures the rank-batched replay, not the Newton kernel.
        """
        return cls(problem_kind="brusselator", n_ranks=1024,
                   components_per_rank=4)

    @classmethod
    def brusselator_flagship(cls) -> "ScaleScenario":
        """The headline Brusselator point: 4096 ranks through lockstep."""
        return cls(problem_kind="brusselator", n_ranks=4096,
                   components_per_rank=8)

    @classmethod
    def synthetic_10k(cls) -> "ScaleScenario":
        """The 10k-rank synthetic point (lockstep-only in the bench:
        an event-driven run at this width would take minutes for no
        extra information — the 1024-rank points already anchor the
        cross-engine comparison)."""
        return cls(n_ranks=10_240, components_per_rank=100)


@dataclass(frozen=True)
class Table1Scenario:
    """Table 1: heterogeneous 15-machine, 3-site grid, balanced vs not.

    The paper's grid: five machines per French site, speeds spanning the
    PII-400 → Athlon-1.4G range, every machine under multi-user load,
    slow fluctuating inter-site links, and the logical chain organised
    *irregularly* (round-robin across sites) so halo exchanges cross
    sites — "a grid computing context not favorable to load balancing".

    The Brusselator drives the numerics, as in the paper.
    """

    seed: int = 2003
    n_points: int = 180
    t_end: float = 10.0
    n_steps: int = 40
    alpha: float = 0.002
    tolerance: float = 1e-5
    speed_divisor: float = 2.0
    #: Multi-user load: deep and *persistent* (dwell a sizeable fraction
    #: of the run) — a colleague's batch job, not millisecond noise.
    #: Scaled with the run length so quick and full mode see the same
    #: number of load epochs (~4-5 per run).
    load_range: tuple[float, float] = (0.15, 1.0)
    load_dwell: float = 2000.0

    def problem(self) -> BrusselatorProblem:
        # alpha is reduced from the paper's 1/50 so that the waveform
        # relaxation's contraction rate (≈ 2cδt/(1+2cδt), c = α(N+1)²)
        # stays away from 1 at this N: the paper's parallel scheme has
        # the same N-vs-sweep-count coupling, it just ran far more
        # sweeps on real hardware than a simulation budget allows.
        return BrusselatorProblem(
            self.n_points,
            t_end=self.t_end,
            n_steps=self.n_steps,
            alpha=self.alpha,
        )

    def platform(self) -> Platform:
        from repro.grid.platform import SiteSpec, multi_site_grid

        sites = [
            SiteSpec(
                name,
                5,
                speed_range=(400.0, 1400.0),  # PII-400 ... Athlon-1.4G
                load_mean_dwell=self.load_dwell,
                load_range=self.load_range,
            )
            for name in ("belfort", "montbeliard", "grenoble")
        ]
        platform = multi_site_grid(sites, RngTree(self.seed))
        for host in platform.hosts:
            # MHz -> work units/s at a scale that puts run times in the
            # paper's hundreds-of-seconds range for this problem size.
            host.speed = host.speed / self.speed_divisor
        return platform

    def host_order(self, platform: Platform) -> list[int]:
        return interleaved_sites_order(platform)

    def solver_config(self, *, trace: bool = False) -> SolverConfig:
        return SolverConfig(
            tolerance=self.tolerance, max_iterations=200_000, trace=trace
        )

    def lb_config(self) -> LBConfig:
        # period=2: on a platform whose imbalance drifts continuously
        # (multi-user load), frequent cheap trials beat the paper's 20
        # (swept in bench_ablations; the offer handshake keeps frequent
        # trials nearly free).
        return LBConfig(
            period=2,
            threshold_ratio=2.0,
            min_components=2,
            accuracy=1.0,
            max_fraction=0.5,
        )

    @classmethod
    def quick(cls) -> "Table1Scenario":
        return cls(
            n_points=105, t_end=5.0, n_steps=20, tolerance=1e-5,
            load_dwell=200.0,
        )


@dataclass(frozen=True)
class ModelsComparisonScenario:
    """§6 discussion: SISC vs SIAC vs AIAC on cluster and grid platforms.

    The claim to reproduce: on the local cluster the three models are
    close; on the grid (slow, fluctuating links + heterogeneity) the
    asynchronous model wins clearly.
    """

    seed: int = 77
    n_components: int = 128
    rate: float = 0.9
    tolerance: float = 1e-8
    n_procs: int = 8

    def problem(self) -> SyntheticProblem:
        import numpy as np

        return SyntheticProblem(
            np.full(self.n_components, self.rate), coupling=0.3
        )

    def cluster_platform(self) -> Platform:
        return homogeneous_cluster(self.n_procs, speed=200.0)

    def grid_platform(self) -> Platform:
        from repro.grid.platform import SiteSpec, multi_site_grid

        sites = [
            SiteSpec("a", self.n_procs // 2, speed_range=(120.0, 280.0),
                     load_range=(0.2, 1.0), load_mean_dwell=3.0),
            SiteSpec("b", self.n_procs - self.n_procs // 2,
                     speed_range=(120.0, 280.0),
                     load_range=(0.2, 1.0), load_mean_dwell=3.0),
        ]
        return multi_site_grid(
            sites,
            RngTree(self.seed),
            inter_latency=0.4,
            inter_bandwidth=5e3,
            inter_fluctuation=(0.1, 1.0),
            inter_fluctuation_dwell=5.0,
        )

    def host_order(self, platform: Platform) -> list[int]:
        return interleaved_sites_order(platform)

    def solver_config(self, *, trace: bool = False) -> SolverConfig:
        return SolverConfig(
            tolerance=self.tolerance, max_iterations=200_000, trace=trace
        )


@dataclass(frozen=True)
class ResilienceScenario:
    """Fault-injection sweep: AIAC+LB vs AIAC vs SIAC vs SISC under faults.

    The heat problem drives the numerics because it has an exact
    sequential reference, so every faulted run's *solution correctness*
    (not just its convergence flag) is checked against ground truth.
    The platform is a homogeneous cluster: any time difference between
    the ``none`` schedule and a faulted one is then attributable to the
    faults and the recovery machinery alone, not to heterogeneity.

    Every named schedule shares one :class:`ResilienceConfig` (tuned so
    retransmissions and liveness detection resolve within a few virtual
    seconds at this problem scale) and the scenario seed, so the whole
    sweep is byte-reproducible.
    """

    seed: int = 42
    n_points: int = 48
    t_end: float = 0.05
    n_steps: int = 12
    n_procs: int = 4
    host_speed: float = 2000.0
    tolerance: float = 1e-7
    max_time: float = 5000.0
    #: Message-fault intensities.
    loss_low: float = 0.10
    loss_high: float = 0.30
    dup_rate: float = 0.10
    reorder_rate: float = 0.20
    reorder_delay: float = 0.5
    #: Timed faults (virtual seconds).
    crash_rank: int = 2
    crash_at: float = 3.0
    crash_downtime: tuple[float, float] = (1.5, 2.5)
    partition_window: tuple[float, float] = (6.0, 9.0)
    slowdown_window: tuple[float, float] = (4.0, 14.0)
    slowdown_factor: float = 0.25
    #: Which schedules the sweep runs (subset of ``SCHEDULE_BUILDERS``).
    schedule_names: tuple[str, ...] = (
        "none",
        "loss10",
        "loss30",
        "dup+reorder",
        "crash",
        "loss10+crash",
        "partition",
        "slowdown",
    )
    models: tuple[str, ...] = ("aiac+lb", "aiac", "siac", "sisc")
    #: The schedule whose AIAC+LB run headlines the report (Gantt + the
    #: acceptance check "converges correctly under loss + crash").
    headline: str = "loss10+crash"

    def problem(self):
        from repro.problems.heat import HeatProblem

        return HeatProblem(
            self.n_points, t_end=self.t_end, n_steps=self.n_steps
        )

    def platform(self) -> Platform:
        return homogeneous_cluster(self.n_procs, speed=self.host_speed)

    def solver_config(self, *, trace: bool = False) -> SolverConfig:
        return SolverConfig(
            tolerance=self.tolerance,
            max_iterations=200_000,
            max_time=self.max_time,
            trace=trace,
        )

    def lb_config(self) -> LBConfig:
        return LBConfig(
            period=5,
            threshold_ratio=2.0,
            min_components=2,
            accuracy=1.0,
            max_fraction=0.5,
        )

    def resilience(self):
        from repro.faults.models import ResilienceConfig

        # base_timeout models a conservative TCP-like RTO on the LAN
        # (~250x the 0.2ms round trip): a dropped halo is retransmitted
        # within ~1-2 sweeps, so loss degrades throughput without
        # freezing boundary data for long stretches.
        return ResilienceConfig(
            base_timeout=0.05,
            heartbeat_period=1.0,
            liveness_timeout=3.0,
            checkpoint_every=20,
        )

    # ------------------------------------------------------------------
    def faults_for(self, name: str) -> tuple:
        """The fault models of one named schedule."""
        from repro.faults.models import (
            HostCrash,
            HostSlowdown,
            LinkPartition,
            MessageDuplication,
            MessageLoss,
            MessageReordering,
        )

        half = self.n_procs // 2
        crash = HostCrash(
            rank=self.crash_rank, at=self.crash_at,
            downtime=self.crash_downtime,
        )
        builders: dict[str, tuple] = {
            "none": (),
            "loss10": (MessageLoss(self.loss_low),),
            "loss30": (MessageLoss(self.loss_high),),
            "dup+reorder": (
                MessageDuplication(self.dup_rate),
                MessageReordering(
                    self.reorder_rate, max_extra_delay=self.reorder_delay
                ),
            ),
            "crash": (crash,),
            "loss10+crash": (MessageLoss(self.loss_low), crash),
            "partition": (
                LinkPartition(
                    t0=self.partition_window[0],
                    t1=self.partition_window[1],
                    ranks_a=tuple(range(half)),
                    ranks_b=tuple(range(half, self.n_procs)),
                ),
            ),
            "slowdown": (
                HostSlowdown(
                    rank=self.crash_rank,
                    t0=self.slowdown_window[0],
                    t1=self.slowdown_window[1],
                    factor=self.slowdown_factor,
                    ramp_steps=4,
                ),
            ),
        }
        if name not in builders:
            raise ValueError(
                f"unknown schedule {name!r}; choose from {sorted(builders)}"
            )
        return builders[name]

    def schedule(self, name: str):
        """Build one named :class:`FaultSchedule` (fresh object per call)."""
        from repro.faults.models import FaultSchedule

        return FaultSchedule(
            faults=self.faults_for(name),
            seed=self.seed,
            resilience=self.resilience(),
        )

    def schedules(self) -> dict:
        return {name: self.schedule(name) for name in self.schedule_names}

    @classmethod
    def quick(cls) -> "ResilienceScenario":
        """Reduced sweep for fast CLI runs: the headline contrast only."""
        return cls(
            schedule_names=("none", "loss10", "crash", "loss10+crash"),
        )

    @classmethod
    def tiny(cls) -> "ResilienceScenario":
        """Smallest instance (CI smoke): clean baseline + loss-and-crash."""
        return cls(
            n_points=32,
            n_steps=8,
            tolerance=1e-6,
            schedule_names=("none", "loss10+crash"),
        )


@dataclass(frozen=True)
class IntegrityScenario:
    """Silent-corruption sweep: detection recall vs wrong-answer rate.

    The data-integrity question behind ``repro integrity``: when values
    rot — in a halo message on the wire, in a live solver block, in a
    saved checkpoint — does the system *detect and recover*, silently
    *mask* the damage (the fixed-point iteration is contractive, so
    clean inputs can iterate poison away), or **converge to a wrong
    answer without anyone noticing**?  The last outcome is the only
    unacceptable one, and the benchmark gate asserts it never happens
    while detection is armed.

    Setup mirrors :class:`ResilienceScenario` (heat problem with exact
    sequential reference; homogeneous cluster so faults alone explain
    any degradation).  Every corruption schedule runs twice: the
    ``detect`` arm with :attr:`~repro.faults.models.ResilienceConfig.
    integrity_checks` armed (checksums, checkpoint CRC, plausibility
    guard) and the ``blind`` arm with them off, measuring what
    asynchronism absorbs unaided.  ``truncate`` payloads only run in
    the detect arm: an unchecked truncated halo is a malformed message
    no receiver contract covers (it would crash the handler, loudly —
    not a silent-corruption datum).
    """

    seed: int = 42
    n_points: int = 48
    t_end: float = 0.05
    n_steps: int = 12
    n_procs: int = 4
    host_speed: float = 2000.0
    tolerance: float = 1e-7
    #: Run budget (virtual seconds).  The clean run converges in ~10;
    #: a blind run still iterating at 60x that is conclusively stalled,
    #: and continuous payload corruption makes stalled runs expensive
    #: (every delivery keeps injecting), so the budget is deliberately
    #: tighter than ResilienceScenario's.
    max_time: float = 600.0
    #: Payload-corruption intensities (per-delivery probability).
    rate_low: float = 0.02
    rate_high: float = 0.10
    perturb_amplitude: float = 10.0
    #: Timed state faults (virtual seconds).
    state_rank: int = 1
    state_at: float = 3.0
    ckpt_at: float = 2.5
    crash_rank: int = 1
    crash_at: float = 3.5
    crash_downtime: tuple[float, float] = (1.0, 2.0)
    #: A converged answer farther than this from the sequential
    #: reference is a *wrong answer* (the silent failure the layer
    #: exists to rule out).
    error_tol: float = 1e-3
    schedule_names: tuple[str, ...] = (
        "none",
        "flip_lo",
        "flip_hi",
        "perturb",
        "truncate",
        "state",
        "ckpt+crash",
    )
    models: tuple[str, ...] = ("aiac+lb", "aiac", "siac", "sisc")
    arms: tuple[str, ...] = ("detect", "blind")
    #: Schedules that only run with detection armed (see class docs).
    detect_only: tuple[str, ...] = ("truncate",)
    headline: str = "flip_hi"

    def problem(self):
        from repro.problems.heat import HeatProblem

        return HeatProblem(
            self.n_points, t_end=self.t_end, n_steps=self.n_steps
        )

    def platform(self) -> Platform:
        return homogeneous_cluster(self.n_procs, speed=self.host_speed)

    def solver_config(self, *, trace: bool = False) -> SolverConfig:
        return SolverConfig(
            tolerance=self.tolerance,
            max_iterations=200_000,
            max_time=self.max_time,
            trace=trace,
        )

    def lb_config(self) -> LBConfig:
        return LBConfig(
            period=5,
            threshold_ratio=2.0,
            min_components=2,
            accuracy=1.0,
            max_fraction=0.5,
        )

    def guard_config(self):
        from repro.guard import GuardConfig

        return GuardConfig()

    def resilience(self, *, detect: bool):
        from repro.faults.models import ResilienceConfig

        # Same transport regime as ResilienceScenario: retransmissions
        # resolve within a couple of sweeps, checkpoints are frequent
        # enough that a rollback costs little progress.
        return ResilienceConfig(
            base_timeout=0.05,
            heartbeat_period=1.0,
            liveness_timeout=3.0,
            checkpoint_every=20,
            integrity_checks=detect,
        )

    # ------------------------------------------------------------------
    def faults_for(self, name: str) -> tuple:
        """The fault models of one named corruption schedule."""
        from repro.faults.models import (
            HostCrash,
            PayloadCorruption,
            StateCorruption,
        )

        builders: dict[str, tuple] = {
            "none": (),
            "flip_lo": (PayloadCorruption(self.rate_low, mode="bitflip"),),
            "flip_hi": (PayloadCorruption(self.rate_high, mode="bitflip"),),
            "perturb": (
                PayloadCorruption(
                    self.rate_high,
                    mode="perturb",
                    amplitude=self.perturb_amplitude,
                ),
            ),
            "truncate": (
                PayloadCorruption(self.rate_low, mode="truncate"),
            ),
            "state": (
                StateCorruption(
                    rank=self.state_rank, at=self.state_at, target="state"
                ),
            ),
            # Poison the saved snapshot, then crash the same rank: the
            # restart *must* restore from checkpoint, so the CRC check
            # is actually on the recovery path (without the crash a
            # later re-checkpoint could simply overwrite the poison).
            "ckpt+crash": (
                StateCorruption(
                    rank=self.crash_rank,
                    at=self.ckpt_at,
                    target="checkpoint",
                ),
                HostCrash(
                    rank=self.crash_rank,
                    at=self.crash_at,
                    downtime=self.crash_downtime,
                ),
            ),
        }
        if name not in builders:
            raise ValueError(
                f"unknown schedule {name!r}; choose from {sorted(builders)}"
            )
        return builders[name]

    def schedule(self, name: str, *, detect: bool):
        """One named :class:`FaultSchedule` with detection armed or not."""
        from repro.faults.models import FaultSchedule

        return FaultSchedule(
            faults=self.faults_for(name),
            seed=self.seed,
            resilience=self.resilience(detect=detect),
        )

    def grid(self) -> list[tuple[str, str, str]]:
        """All (arm, schedule, model) cells the sweep runs, in order."""
        return [
            (arm, name, model)
            for arm in self.arms
            for name in self.schedule_names
            if arm == "detect" or name not in self.detect_only
            for model in self.models
        ]

    @classmethod
    def quick(cls) -> "IntegrityScenario":
        """Reduced sweep for fast CLI runs and the CI smoke."""
        return cls(
            n_points=32,
            n_steps=8,
            tolerance=1e-6,
            schedule_names=("none", "flip_hi", "state", "ckpt+crash"),
        )

    @classmethod
    def tiny(cls) -> "IntegrityScenario":
        """Smallest instance: clean baseline + one payload schedule."""
        return cls(
            n_points=32,
            n_steps=8,
            tolerance=1e-6,
            schedule_names=("none", "flip_hi"),
            models=("aiac+lb", "aiac"),
        )


@dataclass(frozen=True)
class SoakScenario:
    """Chaos soak (``repro soak``): random fault schedules, all models.

    The heat problem (exact sequential reference) at the smallest scale
    that still exercises crash recovery and load balancing: every run's
    answer is checked against ground truth *and* against the fault-free
    run of the same model, on top of the ``repro.guard`` invariants.
    The fault-intensity knobs bound what :func:`repro.guard.soak.
    random_schedule` may draw, so a scenario instance fully determines
    the soak (schedules included) given its seed.
    """

    seed: int = 0
    n_points: int = 32
    t_end: float = 0.05
    n_steps: int = 8
    n_procs: int = 4
    host_speed: float = 2000.0
    tolerance: float = 1e-6
    max_time: float = 2000.0
    models: tuple[str, ...] = ("sisc", "siac", "aiac", "aiac+lb")
    #: Correctness gates: max error vs the sequential reference, and
    #: max divergence from the same model's fault-free solution.
    error_tol: float = 1e-3
    agreement_tol: float = 1e-3
    #: Stall-watchdog horizon (virtual seconds; the tiny heat instance
    #: converges in tens of virtual seconds, so a full horizon without
    #: a single sweep anywhere is genuinely pathological).
    stall_horizon: float = 50.0
    #: Fault-draw bounds for the random schedule generator.
    max_faults: int = 3
    loss_range: tuple[float, float] = (0.05, 0.30)
    dup_range: tuple[float, float] = (0.05, 0.25)
    reorder_range: tuple[float, float] = (0.10, 0.40)
    reorder_delay_range: tuple[float, float] = (0.2, 0.8)
    crash_at_range: tuple[float, float] = (1.0, 5.0)
    crash_downtime_range: tuple[float, float] = (0.5, 2.5)
    slowdown_factor_range: tuple[float, float] = (0.3, 0.7)
    fault_window_range: tuple[float, float] = (0.5, 2.5)

    def problem(self):
        from repro.problems.heat import HeatProblem

        return HeatProblem(
            self.n_points, t_end=self.t_end, n_steps=self.n_steps
        )

    def platform(self) -> Platform:
        return homogeneous_cluster(self.n_procs, speed=self.host_speed)

    def solver_config(self) -> SolverConfig:
        return SolverConfig(
            tolerance=self.tolerance,
            max_iterations=200_000,
            max_time=self.max_time,
        )

    def lb_config(self) -> LBConfig:
        return LBConfig(
            period=5,
            threshold_ratio=2.0,
            min_components=2,
            accuracy=1.0,
            max_fraction=0.5,
        )

    def resilience(self):
        from repro.faults.models import ResilienceConfig

        # Same regime as ResilienceScenario.tiny(): retransmissions and
        # liveness detection resolve within a few virtual seconds.
        return ResilienceConfig(
            base_timeout=0.05,
            heartbeat_period=1.0,
            liveness_timeout=3.0,
            checkpoint_every=20,
        )


@dataclass(frozen=True)
class TraceFigureScenario:
    """Figures 1-4: execution flows of the four models on two processors.

    Two unequal processors and a visible network latency, exactly the
    regime in which the figures' idle gaps appear.
    """

    n_components: int = 24
    rate: float = 0.9
    fast_speed: float = 240.0
    slow_speed: float = 150.0
    latency: float = 0.08
    bandwidth: float = 1e5
    tolerance: float = 1e-6

    def problem(self) -> SyntheticProblem:
        import numpy as np

        return SyntheticProblem(
            np.full(self.n_components, self.rate), coupling=0.3
        )

    def platform(self) -> Platform:
        from repro.grid.host import Host
        from repro.grid.link import Link
        from repro.grid.network import Network

        network = Network(Link(latency=self.latency, bandwidth=self.bandwidth))
        hosts = [
            Host("fast", self.fast_speed),
            Host("slow", self.slow_speed),
        ]
        return Platform(hosts=hosts, network=network)

    def solver_config(self) -> SolverConfig:
        return SolverConfig(
            tolerance=self.tolerance, max_iterations=100_000, trace=True
        )
