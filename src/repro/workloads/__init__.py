"""Named experimental scenarios: one builder per paper experiment."""

from repro.workloads.scenarios import (
    Figure5Scenario,
    Table1Scenario,
    ModelsComparisonScenario,
    TraceFigureScenario,
    ResilienceScenario,
    SoakScenario,
)

__all__ = [
    "Figure5Scenario",
    "Table1Scenario",
    "ModelsComparisonScenario",
    "TraceFigureScenario",
    "ResilienceScenario",
    "SoakScenario",
]
