"""Named experimental scenarios: one builder per paper experiment."""

from repro.workloads.scenarios import (
    Figure5Scenario,
    IntegrityScenario,
    ScaleScenario,
    Table1Scenario,
    ModelsComparisonScenario,
    TraceFigureScenario,
    ResilienceScenario,
    SoakScenario,
)

__all__ = [
    "Figure5Scenario",
    "IntegrityScenario",
    "ScaleScenario",
    "Table1Scenario",
    "ModelsComparisonScenario",
    "TraceFigureScenario",
    "ResilienceScenario",
    "SoakScenario",
]
