"""Metrics over :class:`~repro.core.records.RunResult` objects."""

from __future__ import annotations

import numpy as np

from repro.core.records import RunResult

__all__ = [
    "idle_fraction",
    "work_imbalance",
    "speedup_series",
    "efficiency",
    "time_ratio",
]


def idle_fraction(result: RunResult) -> float:
    """Fraction of total rank-time spent blocked (Figures 1–3's white space).

    Idle is recorded explicitly by the synchronous models; for AIAC it is
    zero by construction.  Requires tracing to have been enabled.
    """
    if not result.tracer.enabled:
        raise ValueError("idle_fraction needs a run with trace=True")
    total = result.time * result.n_ranks
    if total == 0:
        return 0.0
    idle = sum(result.tracer.idle_time_of(r) for r in range(result.n_ranks))
    return idle / total


def work_imbalance(result: RunResult) -> float:
    """``max / mean`` of per-rank busy time (1.0 = perfectly balanced)."""
    busy = np.array(
        [result.tracer.busy_time_of(r) for r in range(result.n_ranks)]
    )
    mean = busy.mean()
    if mean == 0:
        return 1.0
    return float(busy.max() / mean)


def speedup_series(
    times: dict[int, float], *, baseline_procs: int | None = None
) -> dict[int, float]:
    """Speedups from a ``{n_procs: time}`` scaling series.

    The baseline defaults to the smallest processor count present.
    """
    if not times:
        raise ValueError("empty series")
    if baseline_procs is None:
        baseline_procs = min(times)
    base = times[baseline_procs]
    return {p: base / t for p, t in sorted(times.items())}


def efficiency(times: dict[int, float]) -> dict[int, float]:
    """Parallel efficiency ``speedup(p) * base_p / p`` of a scaling series."""
    base_p = min(times)
    speedups = speedup_series(times, baseline_procs=base_p)
    return {p: s * base_p / p for p, s in speedups.items()}


def time_ratio(unbalanced: RunResult, balanced: RunResult) -> float:
    """The paper's headline metric: unbalanced time / balanced time."""
    if balanced.time <= 0:
        raise ValueError("balanced run has non-positive time")
    return unbalanced.time / balanced.time
