"""Micro/macro benchmark plumbing: timers, warmup/repeat logic, JSON.

The kernels this repo runs (banded LU, batched Newton, the DES event
loop) are fast enough that naive one-shot timing is all noise.  This
module provides the small amount of machinery a credible perf
trajectory needs:

* :class:`Timer` — a ``with``-block wall-clock timer,
* :func:`bench` — warmup + repeat measurement returning robust stats
  (best / median / mean), the shape pytest-benchmark uses,
* :class:`BenchReport` — accumulates named results, computes speedups
  against a baseline run, and writes the ``BENCH_kernels.json`` that
  future PRs regress against.

Everything here is wall-clock (``perf_counter``): the kernels are
CPU-bound and single-threaded, and wall-clock is what the end-to-end
experiments pay.
"""

from __future__ import annotations

import hashlib
import json
import platform
import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "Timer",
    "bench",
    "BenchResult",
    "BenchReport",
    "PerfComparison",
    "compare",
    "stable_digest",
    "run_fingerprint",
    "save_report",
]


def canonical_json(data: Any) -> str:
    """Canonical JSON text of ``data``: sorted keys, no whitespace.

    Python serialises floats via ``repr`` (shortest round-trip form), so
    identical float values always produce identical text — which makes
    this a sound basis for byte-level reproducibility checks.
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def stable_digest(data: Any) -> str:
    """SHA-256 hex digest of ``data``'s canonical JSON form.

    Used by the resilience experiment's determinism check: two runs of
    the same scenario and seed must produce the same digest.  Feed it
    only virtual-time quantities — a wall-clock field would break the
    guarantee by construction.
    """
    return hashlib.sha256(canonical_json(data).encode("utf-8")).hexdigest()


def run_fingerprint(result: Any) -> str:
    """Engine-independent digest of a solver :class:`RunResult`.

    Covers every virtual-time observable a caller can act on —
    convergence, timings, per-rank iteration/work vectors, partition,
    residuals, the full solution (bit-exact via float ``repr``) and the
    tracer aggregates — while *excluding* execution-engine telemetry
    (``meta["engine"]``, ``meta["events_dispatched"]``): the reference
    event-driven run and the lockstep replay of the same scenario must
    fingerprint identically, and wall-clock-ish counters must never
    break that.  Duck-typed so analysis code can fingerprint any object
    with the ``RunResult`` surface.
    """
    tracer = result.tracer
    meta = {
        k: v
        for k, v in result.meta.items()
        if k not in ("engine", "events_dispatched")
        and isinstance(v, (str, int, float, bool, list, type(None)))
    }
    return stable_digest(
        {
            "model": result.model,
            "converged": result.converged,
            "time": result.time,
            "iterations": list(result.iterations),
            "work": list(result.work),
            "solution": [block.tolist() for block in result.solution_blocks],
            "final_partition": [list(b) for b in result.final_partition],
            "residuals_at_stop": list(result.residuals_at_stop),
            "n_migrations": result.n_migrations,
            "components_migrated": result.components_migrated,
            "busy": [tracer.busy_time_of(r) for r in range(result.n_ranks)],
            "idle": [tracer.idle_time_of(r) for r in range(result.n_ranks)],
            "n_messages": tracer.n_messages(),
            "meta": meta,
        }
    )


def save_report(path: str, data: dict[str, Any]) -> None:
    """Write a JSON report with sorted keys (diff-friendly, stable)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


class Timer:
    """Context-manager wall-clock timer.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed > 0
    True
    """

    __slots__ = ("elapsed", "_t0")

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._t0: float = 0.0

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.elapsed = time.perf_counter() - self._t0


@dataclass(slots=True)
class BenchResult:
    """Statistics of one benchmarked callable (seconds)."""

    name: str
    best: float
    median: float
    mean: float
    repeats: int
    meta: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "best_s": self.best,
            "median_s": self.median,
            "mean_s": self.mean,
            "repeats": self.repeats,
            **({"meta": self.meta} if self.meta else {}),
        }


def bench(
    fn: Callable[[], Any],
    *,
    name: str = "",
    repeats: int = 5,
    warmup: int = 1,
    min_time: float = 0.0,
    meta: dict[str, Any] | None = None,
) -> BenchResult:
    """Time ``fn()`` with warmup and repeats.

    ``min_time`` keeps repeating past ``repeats`` until the accumulated
    measurement time exceeds it (useful for sub-millisecond kernels).
    The *best* time is the headline number: for a deterministic
    CPU-bound kernel the minimum is the least-noise estimate, while
    mean/median document the spread.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for _ in range(warmup):
        fn()
    times: list[float] = []
    total = 0.0
    while len(times) < repeats or total < min_time:
        t0 = time.perf_counter()
        fn()
        dt = time.perf_counter() - t0
        times.append(dt)
        total += dt
        if len(times) >= 10_000:  # safety valve
            break
    return BenchResult(
        name=name or getattr(fn, "__name__", "bench"),
        best=min(times),
        median=statistics.median(times),
        mean=statistics.fmean(times),
        repeats=len(times),
        meta=dict(meta or {}),
    )


class BenchReport:
    """Accumulates :class:`BenchResult` rows and serialises the report.

    A report can embed a *baseline* (a previously saved report, e.g.
    measured on the pre-optimisation seed): matching entry names then
    get a ``speedup_vs_baseline`` field computed from best times.
    """

    def __init__(self, title: str, *, baseline: dict[str, Any] | None = None) -> None:
        self.title = title
        self.results: list[BenchResult] = []
        self.baseline = baseline

    def add(self, result: BenchResult) -> BenchResult:
        self.results.append(result)
        return result

    def run(self, fn: Callable[[], Any], **kwargs: Any) -> BenchResult:
        """Benchmark ``fn`` via :func:`bench` and record the result."""
        return self.add(bench(fn, **kwargs))

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def _baseline_best(self, name: str) -> float | None:
        if not self.baseline:
            return None
        for entry in self.baseline.get("results", []):
            if entry.get("name") == name:
                return float(entry["best_s"])
        return None

    def to_dict(self) -> dict[str, Any]:
        rows = []
        for r in self.results:
            row = r.to_dict()
            base = self._baseline_best(r.name)
            if base is not None and r.best > 0:
                row["baseline_best_s"] = base
                row["speedup_vs_baseline"] = base / r.best
            rows.append(row)
        return {
            "title": self.title,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "results": rows,
        }

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2)
            fh.write("\n")

    @staticmethod
    def load(path: str) -> dict[str, Any]:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)

    def format_table(self) -> str:
        """Plain-text rendering for terminal output."""
        lines = [self.title, "-" * len(self.title)]
        width = max((len(r.name) for r in self.results), default=4)
        for r in self.results:
            base = self._baseline_best(r.name)
            extra = ""
            if base is not None and r.best > 0:
                extra = f"  ({base / r.best:5.2f}x vs baseline)"
            lines.append(
                f"{r.name:<{width}}  best {1e3 * r.best:9.3f} ms  "
                f"median {1e3 * r.median:9.3f} ms{extra}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Report-to-report comparison (the ``repro bench-compare`` CI gate)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class PerfComparison:
    """Outcome of comparing two ``BENCH_*.json`` reports.

    ``rows`` hold one entry per benchmark name present in both reports:
    ``{"name", "old_best_s", "new_best_s", "ratio", "regressed"}`` where
    ``ratio = new/old`` (> 1 means the new run is slower).  Names present
    in only one report are listed in ``only_old`` / ``only_new`` and
    never fail the gate — adding or retiring benchmarks is not a
    regression.
    """

    threshold: float
    rows: list[dict[str, Any]] = field(default_factory=list)
    only_old: list[str] = field(default_factory=list)
    only_new: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[dict[str, Any]]:
        return [row for row in self.rows if row["regressed"]]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def report(self) -> str:
        lines = [
            f"benchmark comparison (regression threshold: "
            f"+{100.0 * self.threshold:.0f}% on best time)"
        ]
        width = max((len(r["name"]) for r in self.rows), default=4)
        for row in self.rows:
            flag = "  << REGRESSION" if row["regressed"] else ""
            lines.append(
                f"{row['name']:<{width}}  "
                f"old {1e3 * row['old_best_s']:9.3f} ms  "
                f"new {1e3 * row['new_best_s']:9.3f} ms  "
                f"ratio {row['ratio']:5.2f}{flag}"
            )
        if self.only_old:
            lines.append(f"only in old report: {', '.join(self.only_old)}")
        if self.only_new:
            lines.append(f"only in new report: {', '.join(self.only_new)}")
        lines.append(
            f"{len(self.regressions)} regression(s) in {len(self.rows)} "
            f"compared benchmark(s)"
        )
        return "\n".join(lines)


def compare(
    old_json: str | dict[str, Any],
    new_json: str | dict[str, Any],
    threshold: float = 0.10,
) -> PerfComparison:
    """Compare two benchmark reports; flag >``threshold`` slowdowns.

    ``old_json`` / ``new_json`` are paths to (or already-loaded dicts
    of) reports in the :meth:`BenchReport.to_dict` shape.  A benchmark
    regresses when its new best time exceeds the old best by more than
    the fractional ``threshold`` (0.10 = 10% slower).  Best times are
    the right basis: for deterministic CPU-bound kernels the minimum is
    the least-noise estimate.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    old = BenchReport.load(old_json) if isinstance(old_json, str) else old_json
    new = BenchReport.load(new_json) if isinstance(new_json, str) else new_json
    old_best = {
        e["name"]: float(e["best_s"]) for e in old.get("results", ())
    }
    new_best = {
        e["name"]: float(e["best_s"]) for e in new.get("results", ())
    }
    out = PerfComparison(threshold=threshold)
    for name in old_best:
        if name not in new_best:
            out.only_old.append(name)
            continue
        ratio = (
            new_best[name] / old_best[name]
            if old_best[name] > 0
            else float("inf")
        )
        out.rows.append(
            {
                "name": name,
                "old_best_s": old_best[name],
                "new_best_s": new_best[name],
                "ratio": ratio,
                "regressed": ratio > 1.0 + threshold,
            }
        )
    out.only_new = [name for name in new_best if name not in old_best]
    return out
