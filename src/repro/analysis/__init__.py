"""Analysis of run results: metrics, Gantt rendering, report tables."""

from repro.analysis.metrics import (
    efficiency,
    idle_fraction,
    speedup_series,
    time_ratio,
    work_imbalance,
)
from repro.analysis.gantt import render_gantt
from repro.analysis.plots import ascii_plot
from repro.analysis.reporting import format_series, format_table

__all__ = [
    "idle_fraction",
    "work_imbalance",
    "speedup_series",
    "efficiency",
    "time_ratio",
    "render_gantt",
    "ascii_plot",
    "format_table",
    "format_series",
]
