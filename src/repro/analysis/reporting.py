"""Plain-text tables for the benchmark harness.

Every benchmark prints the rows the paper reports (Table 1's
non-balanced / balanced / ratio line, Figure 5's time-vs-processors
series) through these formatters, so EXPERIMENTS.md and the bench output
stay visually comparable to the paper.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_series"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:,.1f}" if abs(value) >= 10 else f"{value:.2f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned text table with a header rule."""
    if not headers:
        raise ValueError("headers must be non-empty")
    str_rows = [[_fmt(c) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def format_series(
    name: str, xs: Sequence[Any], ys: Sequence[Any], *, x_label: str = "x", y_label: str = "y"
) -> str:
    """Render a named (x, y) series as a two-column table."""
    if len(xs) != len(ys):
        raise ValueError(f"series length mismatch: {len(xs)} vs {len(ys)}")
    body = format_table([x_label, y_label], list(zip(xs, ys)))
    return f"{name}\n{body}"
