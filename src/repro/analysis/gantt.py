"""ASCII Gantt rendering of execution traces (Figures 1–4).

The paper's Figures 1–4 show, for two processors, grey computation
blocks separated by idle gaps, with arrows for messages.  We render the
same information as text::

    rank 0 |████████░░████████░░███
    rank 1 |██████████████████████

``█`` = computing, ``░`` = idle (explicitly recorded waits), ``·`` =
outside any span (before the first / after the last iteration), ``▼`` =
a load-balancing migration initiated in that time bin, ``✖`` = an
injected fault affecting that rank (crash/downtime window, slowdown,
re-absorption of an orphaned migration).  Platform-wide faults
(partitions, latency spikes) have no single row; they are listed under
the chart instead.
"""

from __future__ import annotations

from repro.core.records import RunResult

__all__ = ["render_gantt"]

BUSY = "█"
IDLE = "░"
NONE = "·"
MIGRATE = "▼"
FAULT = "✖"


def render_gantt(
    result: RunResult,
    *,
    width: int = 80,
    t_max: float | None = None,
) -> str:
    """Render the run's execution flow as one text row per rank.

    Each character covers ``t_max / width`` of virtual time; a bin is
    busy if any iteration span overlaps it (idle gaps shorter than a bin
    disappear, exactly like in a printed Gantt).
    """
    if not result.tracer.enabled:
        raise ValueError("render_gantt needs a run with trace=True")
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    horizon = t_max if t_max is not None else result.time
    if horizon <= 0:
        raise ValueError("nothing to render: horizon is 0")
    dt = horizon / width

    rows = []
    for rank in range(result.n_ranks):
        cells = [NONE] * width

        def paint(t0: float, t1: float, glyph: str) -> None:
            if t1 <= 0 or t0 >= horizon:
                return
            b0 = max(int(t0 / dt), 0)
            b1 = min(int((t1 - 1e-12) / dt), width - 1)
            for b in range(b0, b1 + 1):
                # Busy wins over idle wins over empty.
                if glyph == BUSY or cells[b] == NONE:
                    cells[b] = glyph

        for span in result.tracer.idles:
            if span.rank == rank:
                paint(span.t0, span.t1, IDLE)
        for span in result.tracer.iterations:
            if span.rank == rank:
                paint(span.t0, span.t1, BUSY)
        for mig in result.tracer.migrations:
            if mig.src_rank == rank and 0 <= mig.time < horizon:
                cells[min(int(mig.time / dt), width - 1)] = MIGRATE
        for fault in result.tracer.faults:
            # Fault overlays win over everything: the reader must see
            # where the platform misbehaved even inside a busy block.
            if fault.rank != rank or fault.time >= horizon:
                continue
            t_end = min(fault.t_end, horizon)  # open windows (no restart)
            b0 = max(int(fault.time / dt), 0)
            b1 = min(int(max(t_end - 1e-12, fault.time) / dt), width - 1)
            for b in range(b0, b1 + 1):
                cells[b] = FAULT
        rows.append(f"rank {rank:2d} |{''.join(cells)}|")

    legend = f"{BUSY}=compute {IDLE}=idle {MIGRATE}=migration"
    if result.tracer.faults:
        legend += f" {FAULT}=fault"
    header = f"{result.model}: t in [0, {horizon:.3g}]s, {legend}"
    lines = [header, *rows]
    global_faults = [f for f in result.tracer.faults if f.rank is None]
    if global_faults:
        lines.append("platform-wide faults:")
        for fault in global_faults:
            window = (
                f"t={fault.time:.3g}"
                if fault.t_end == fault.time
                else f"t=[{fault.time:.3g}, {fault.t_end:.3g}]"
            )
            detail = f" ({fault.detail})" if fault.detail else ""
            lines.append(f"  {FAULT} {fault.kind} {window}{detail}")
    return "\n".join(lines)
