"""Text plots: render (x, y) series as ASCII charts.

The paper's Figure 5 is a log-log plot of execution time against the
number of processors with two curves (with/without load balancing).
:func:`ascii_plot` renders the same thing in a terminal::

    time (s) vs processors  [log-log]
    1e+04 |  A
          |     A
          |  B     A
    1e+03 |     B      A
          |              B
          +------------------
            4    8   16  32

Multiple series get distinct glyphs and a legend.  Used by the Figure 5
benchmark report and the CLI.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["ascii_plot"]

_GLYPHS = "ABCDEFGH"


def _transform(value: float, log: bool) -> float:
    if log:
        if value <= 0:
            raise ValueError(f"log axis requires positive values, got {value!r}")
        return math.log10(value)
    return value


def ascii_plot(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 60,
    height: int = 16,
    log_x: bool = False,
    log_y: bool = False,
    title: str = "",
) -> str:
    """Render named ``{label: (xs, ys)}`` series as an ASCII chart.

    Points are plotted with one glyph per series; later series overwrite
    earlier ones on collisions.  Axis ranges cover all series jointly.
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 10 or height < 4:
        raise ValueError(f"plot too small: {width}x{height}")
    if len(series) > len(_GLYPHS):
        raise ValueError(f"at most {len(_GLYPHS)} series supported")

    points: list[tuple[float, float, str]] = []
    for glyph, (label, (xs, ys)) in zip(_GLYPHS, series.items()):
        if len(xs) != len(ys):
            raise ValueError(f"series {label!r}: length mismatch")
        if not xs:
            raise ValueError(f"series {label!r} is empty")
        for x, y in zip(xs, ys):
            points.append((_transform(x, log_x), _transform(y, log_y), glyph))

    x_lo = min(p[0] for p in points)
    x_hi = max(p[0] for p in points)
    y_lo = min(p[1] for p in points)
    y_hi = max(p[1] for p in points)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y, glyph in points:
        col = int((x - x_lo) / x_span * (width - 1))
        row = int((y - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][col] = glyph

    def fmt_axis(value: float, log: bool) -> str:
        return f"{10 ** value:.3g}" if log else f"{value:.3g}"

    label_width = max(len(fmt_axis(y_hi, log_y)), len(fmt_axis(y_lo, log_y)))
    lines = []
    if title:
        scale = (
            " [log-log]" if (log_x and log_y)
            else " [log-x]" if log_x
            else " [log-y]" if log_y
            else ""
        )
        lines.append(f"{title}{scale}")
    for i, row_cells in enumerate(grid):
        if i == 0:
            label = fmt_axis(y_hi, log_y).rjust(label_width)
        elif i == height - 1:
            label = fmt_axis(y_lo, log_y).rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row_cells)}")
    lines.append(" " * label_width + " +" + "-" * width)
    x_left = fmt_axis(x_lo, log_x)
    x_right = fmt_axis(x_hi, log_x)
    pad = width - len(x_left) - len(x_right)
    lines.append(
        " " * (label_width + 2) + x_left + " " * max(pad, 1) + x_right
    )
    legend = "   ".join(
        f"{glyph}={label}" for glyph, label in zip(_GLYPHS, series.keys())
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
