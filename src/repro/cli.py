"""Command-line interface: run any experiment (or a custom solve).

Usage::

    python -m repro figure5 [--full|--scale] [--problem synthetic|brusselator]
                            [--jobs N] [--no-cache] [--json OUT]
    python -m repro table1 [--full] [--jobs N] [--no-cache]
    python -m repro figures-1-4
    python -m repro models
    python -m repro resilience [--full] [--json BENCH_resilience.json]
    python -m repro integrity [--full] [--check] [--json BENCH_integrity.json]
    python -m repro soak [--schedules N] [--seed S] [--out-dir DIR]
    python -m repro ablations [--only period,estimator,...]
    python -m repro bench-compare OLD.json NEW.json [--threshold 0.1]
    python -m repro metrics figure5 [--tiny|--full] [--out PREFIX] [--profile]
    python -m repro trace figure5 [--tiny|--full] [--out PREFIX] [--profile]
    python -m repro solve --problem brusselator --ranks 4 --lb [--gantt]
    python -m repro serve [--state-dir D] [--socket S] [--workers N]
    python -m repro submit --kind figure5 --mode tiny [--wait] [--socket S]
    python -m repro jobs [--tenant T] [--json]
    python -m repro result JOB_ID [--follow]
    python -m repro health [--json]
    python -m repro audit-replay [--state-dir D] [--sample N]
    python -m repro list

The experiment commands run the corresponding experiment of DESIGN.md §4
and print the same report the benchmark writes to ``benchmarks/out/``;
``solve`` assembles a one-off run from flags.

Every sweep verb (figure5 / table1 / resilience / ablations / soak)
accepts ``--jobs N`` to fan its independent runs over N worker
processes and caches finished runs under ``--cache-dir`` (default
``.repro-cache/``; disable with ``--no-cache``).  Reports are
byte-identical whatever the jobs/cache combination — see
``docs/performance.md`` for the contract.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

__all__ = ["main"]


def _engine_for(args: argparse.Namespace):
    """Build the sweep engine a verb's ``--jobs``/``--cache`` flags ask for."""
    from repro.exec import RunCache, SweepEngine

    max_bytes = None
    if getattr(args, "cache_max_mb", None):
        max_bytes = int(args.cache_max_mb * 1e6)
    cache = RunCache(args.cache_dir, max_bytes=max_bytes) if args.cache else None
    return SweepEngine(jobs=args.jobs, cache=cache)


def _figure5(args: argparse.Namespace) -> str:
    from repro.experiments import run_figure5
    from repro.workloads import Figure5Scenario

    brusselator = getattr(args, "problem", "synthetic") == "brusselator"
    if args.scale:
        # The Brusselator scale preset resizes the sweep (see the
        # scenario docstring), so it is its own constructor rather than
        # a field swap on the synthetic one.
        scenario = (
            Figure5Scenario.scale_brusselator()
            if brusselator
            else Figure5Scenario.scale()
        )
    elif args.full:
        scenario = Figure5Scenario()
    else:
        scenario = Figure5Scenario.quick()
    if brusselator and not args.scale:
        import dataclasses

        scenario = dataclasses.replace(scenario, problem_kind="brusselator")
    engine = _engine_for(args)
    result = run_figure5(scenario, engine=engine)
    report = result.report()
    if args.json:
        from repro.analysis.perf import save_report

        data = result.to_dict()
        data["engine"] = engine.stats.to_dict(timing=False)
        save_report(args.json, data)
        report += f"\nfigure5 report written to {args.json}"
    return report + f"\n[{engine.stats.summary()}]"


def _table1(args: argparse.Namespace) -> str:
    from repro.experiments import run_table1
    from repro.workloads import Table1Scenario

    scenario = Table1Scenario() if args.full else Table1Scenario.quick()
    engine = _engine_for(args)
    report = run_table1(scenario, engine=engine).report()
    return report + f"\n[{engine.stats.summary()}]"


def _figures_1_4(args: argparse.Namespace) -> str:
    from repro.experiments import run_trace_figures

    return run_trace_figures().report()


def _models(args: argparse.Namespace) -> str:
    from repro.experiments import run_models_comparison

    return run_models_comparison().report()


def _resilience(args: argparse.Namespace) -> str:
    from repro.experiments import run_resilience
    from repro.workloads import ResilienceScenario

    if args.full:
        scenario = ResilienceScenario()
    elif args.tiny:
        scenario = ResilienceScenario.tiny()
    else:
        scenario = ResilienceScenario.quick()
    engine = _engine_for(args)
    result = run_resilience(scenario, engine=engine)
    report = result.report()
    if args.json:
        result.save_json(args.json)
        report += f"\nresilience report written to {args.json}"
    return report + f"\n[{engine.stats.summary()}]"


def _integrity(args: argparse.Namespace) -> str:
    from repro.experiments import run_integrity
    from repro.workloads import IntegrityScenario

    if args.full:
        scenario = IntegrityScenario()
    elif args.tiny:
        scenario = IntegrityScenario.tiny()
    else:
        scenario = IntegrityScenario.quick()
    engine = _engine_for(args)
    result = run_integrity(scenario, engine=engine)
    report = result.report()
    if args.json:
        result.save_json(args.json)
        report += f"\nintegrity report written to {args.json}"
    if args.check:
        wrong = result.wrong_detected_rows()
        mismatched = result.clean_arm_mismatches()
        if wrong or mismatched:
            print(report)
            problems = []
            if wrong:
                problems.append(
                    f"{len(wrong)} undetected wrong answer(s) with "
                    "detection armed"
                )
            if mismatched:
                problems.append(
                    "zero-corruption rows differ between arms for "
                    + ", ".join(mismatched)
                )
            raise SystemExit("integrity gate failed: " + "; ".join(problems))
        report += "\nintegrity gate passed"
    return report + f"\n[{engine.stats.summary()}]"


def _topology_zoo(args: argparse.Namespace) -> str:
    from repro.experiments import TopologyZooScenario, run_topology_zoo

    scenario = (
        TopologyZooScenario() if args.full else TopologyZooScenario.quick()
    )
    engine = _engine_for(args)
    result = run_topology_zoo(scenario, engine=engine)
    report = result.report()
    if args.json:
        result.save_json(args.json)
        report += f"\ntopology-zoo report written to {args.json}"
    return report + f"\n[{engine.stats.summary()}]"


def _obs_mode(args: argparse.Namespace) -> str:
    if args.full:
        return "full"
    if args.tiny:
        return "tiny"
    return "quick"


def _metrics(args: argparse.Namespace) -> str:
    """``repro metrics``: run an experiment, emit its metrics sidecar."""
    from repro.obs import run_observed

    obs = run_observed(
        args.experiment,
        mode=_obs_mode(args),
        profile=args.profile,
        with_trace=not args.no_trace,
    )
    lines = [obs.report()]
    for path, info in obs.write(args.out).items():
        lines.append(f"wrote {path} ({info})")
    return "\n".join(lines)


def _trace(args: argparse.Namespace) -> str:
    """``repro trace``: like ``metrics`` but leads with the trace info."""
    from repro.obs import run_observed

    obs = run_observed(
        args.experiment, mode=_obs_mode(args), profile=args.profile
    )
    written = obs.write(args.out)
    lines = [
        f"traced headline run: {obs.traced_label}",
        "open the .trace.json file at https://ui.perfetto.dev "
        "(or chrome://tracing)",
    ]
    for path, info in written.items():
        lines.append(f"wrote {path} ({info})")
    if obs.profiler is not None:
        lines.append(obs.profiler.summary())
    return "\n".join(lines)


_ABLATIONS: dict[str, str] = {
    "period": "sweep_lb_period",
    "threshold": "sweep_threshold_ratio",
    "accuracy": "sweep_accuracy",
    "famine": "sweep_min_components",
    "estimator": "sweep_estimator",
    "adaptive": "compare_adaptive_period",
    "detection": "compare_detection_protocols",
    "skip": "compare_skip_optimisation",
}


def _ablations(args: argparse.Namespace) -> str:
    import repro.experiments.ablations as ablations

    selected = (
        [k.strip() for k in args.only.split(",")] if args.only else list(_ABLATIONS)
    )
    unknown = [k for k in selected if k not in _ABLATIONS]
    if unknown:
        raise SystemExit(
            f"unknown ablation(s) {unknown}; choose from {sorted(_ABLATIONS)}"
        )
    engine = _engine_for(args)
    parts = []
    for key in selected:
        fn = getattr(ablations, _ABLATIONS[key])
        parts.append(fn(engine=engine).report())
    parts.append(f"[{engine.stats.summary()}]")
    return "\n\n".join(parts)


def _solve(args: argparse.Namespace) -> str:
    import numpy as np

    from repro.core import LBConfig, SolverConfig, run_aiac, run_balanced_aiac
    from repro.grid import Host, Link, Network, Platform, homogeneous_cluster
    from repro.models import run_siac, run_sisc
    from repro.problems import BrusselatorProblem, HeatProblem, SyntheticProblem

    if args.problem == "brusselator":
        problem = BrusselatorProblem(
            args.size, t_end=4.0, n_steps=max(10, args.size // 2)
        )
        speed = 20_000.0
    elif args.problem == "heat":
        problem = HeatProblem(args.size, t_end=0.05, n_steps=40)
        speed = 4_000.0
    elif args.problem == "synthetic":
        problem = SyntheticProblem.with_hard_region(
            args.size, easy_rate=0.5, hard_rate=0.95, active_cost=10.0
        )
        speed = 200.0
    else:  # pragma: no cover - argparse choices guard this
        raise SystemExit(f"unknown problem {args.problem!r}")

    if args.slow_factor > 1.0:
        network = Network(Link(latency=1e-4, bandwidth=100e6))
        hosts = [Host(f"node-{i:02d}", speed) for i in range(args.ranks - 1)]
        hosts.append(Host("slow", speed / args.slow_factor))
        platform = Platform(hosts=hosts, network=network)
    else:
        platform = homogeneous_cluster(args.ranks, speed=speed)

    config = SolverConfig(tolerance=args.tolerance, max_iterations=500_000)
    if args.lb:
        result = run_balanced_aiac(
            problem, platform, config, LBConfig(period=args.lb_period)
        )
    elif args.model == "sisc":
        result = run_sisc(problem, platform, config)
    elif args.model == "siac":
        result = run_siac(problem, platform, config)
    else:
        result = run_aiac(problem, platform, config)

    lines = [result.summary()]
    if hasattr(problem, "reference_solution"):
        reference = problem.reference_solution()
        lines.append(
            f"max error vs sequential reference: "
            f"{result.max_error_vs(reference):.3e}"
        )
    else:
        lines.append(f"max residual error: {float(np.max(result.solution())):.3e}")
    if args.lb:
        lines.append(
            f"migrations: {result.n_migrations} "
            f"({result.components_migrated} components); "
            f"final blocks: {result.meta['final_sizes']}"
        )
    if args.gantt:
        from repro.analysis import render_gantt

        lines.append(render_gantt(result, width=80))
    if args.json:
        result.save_json(args.json)
        lines.append(f"run summary written to {args.json}")
    return "\n".join(lines)


def _soak(args: argparse.Namespace) -> str:
    from repro.guard.soak import run_soak

    models = tuple(args.models.split(",")) if args.models else None
    engine = _engine_for(args)
    result = run_soak(
        n_schedules=args.schedules,
        seed=args.seed,
        models=models,
        out_dir=args.out_dir,
        shrink=not args.no_shrink,
        engine=engine,
    )
    if args.json:
        result.save_json(args.json)
    report = result.report()
    report += f"\n[{engine.stats.summary()}]"
    if args.json:
        report += f"\nsoak report written to {args.json}"
    if not result.ok:
        # Print before raising: argparse handlers normally return the
        # report, but a failing soak must exit non-zero for CI.
        print(report)
        raise SystemExit(
            f"soak failed: {len(result.failures)} (schedule x model) "
            f"run(s) violated guard assertions"
        )
    return report


def _bench_compare(args: argparse.Namespace) -> str:
    from repro.analysis.perf import compare

    comparison = compare(args.old, args.new, threshold=args.threshold)
    report = comparison.report()
    if not comparison.ok:
        # Print before raising: a regression must exit non-zero for CI.
        print(report)
        raise SystemExit(
            f"bench-compare failed: {len(comparison.regressions)} "
            f"benchmark(s) regressed by more than "
            f"{100.0 * args.threshold:.0f}%"
        )
    return report


_DEFAULT_SOCKET = ".repro-serve/serve.sock"


def _serve_client(args: argparse.Namespace):
    from repro.serve import ServeClient

    return ServeClient(args.socket)


def _serve(args: argparse.Namespace) -> str:
    """``repro serve``: run the job-queue daemon in the foreground."""
    from repro.serve import ServeConfig, ServeDaemon

    config = ServeConfig(
        state_dir=args.state_dir,
        address=args.socket,
        workers=args.workers,
        cache=args.cache,
        cache_dir=args.cache_dir,
        cache_max_mb=args.cache_max_mb,
        quota=args.quota,
        job_timeout_s=args.job_timeout,
        max_retries=args.max_retries,
        retry_backoff_s=args.retry_backoff,
        durable=not args.no_fsync,
    )
    daemon = ServeDaemon(config)
    print(
        f"repro serve: listening on {config.resolved_address()} "
        f"(state: {config.state_dir}, workers: {config.workers}); Ctrl-C stops"
    )
    daemon.serve_forever()
    return "repro serve: stopped"


def _spec_from_args(args: argparse.Namespace) -> dict:
    spec: dict = {"kind": args.kind}
    if args.kind in ("figure5", "resilience"):
        spec["mode"] = args.mode
    elif args.kind == "soak":
        spec["schedules"] = args.schedules
        spec["seed"] = args.seed
    elif args.kind == "sleep":
        spec["seconds"] = args.seconds
        spec["tasks"] = args.tasks
    return spec


def _submit(args: argparse.Namespace) -> str:
    client = _serve_client(args)
    job_id = client.submit(
        _spec_from_args(args), tenant=args.tenant, priority=args.priority
    )
    if not args.wait:
        return job_id
    job = client.result(job_id, follow=True)
    digest = (job.get("result") or {}).get("digest", "")
    report = f"{job_id}  {job['state']}  {digest}"
    if job["state"] != "done":
        print(report)
        raise SystemExit(f"job {job_id} finished {job['state']}: {job['error']}")
    return report


def _jobs(args: argparse.Namespace) -> str:
    client = _serve_client(args)
    jobs = client.jobs(tenant=args.tenant or None)
    if args.json:
        import json

        return json.dumps(jobs, indent=2, sort_keys=True)
    if not jobs:
        return "no jobs"
    lines = [f"{'JOB':<10} {'TENANT':<12} {'PRI':>3} {'STATE':<9} KIND"]
    for job in jobs:
        lines.append(
            f"{job['job_id']:<10} {job['tenant']:<12} {job['priority']:>3} "
            f"{job['state']:<9} {job['kind']}"
        )
    return "\n".join(lines)


def _result(args: argparse.Namespace) -> str:
    import json

    client = _serve_client(args)
    if not args.follow:
        return json.dumps(client.result(args.job_id), indent=2, sort_keys=True)
    for event in client.follow(args.job_id):
        if event.get("event") == "result":
            return json.dumps(event["job"], indent=2, sort_keys=True)
        print(f"{args.job_id}: {event.get('state', '?')}")
    raise SystemExit(f"stream for {args.job_id} ended without a result")


def _health(args: argparse.Namespace) -> str:
    import json

    health = _serve_client(args).health()
    if args.json:
        return json.dumps(health, indent=2, sort_keys=True)
    states = " ".join(f"{k}={v}" for k, v in health["states"].items())
    report = (
        f"ok: {health['ok']}\n"
        f"address: {health['address']}\n"
        f"uptime_s: {health['uptime_s']:.1f}\n"
        f"queue_depth: {health['queue_depth']}\n"
        f"states: {states}\n"
        f"cache_hit_rate: {health['cache_hit_rate']:.3f}\n"
        f"watchdog_kills: {health['watchdog_kills']}\n"
        f"wal_seq: {health['wal_seq']}  audit_seq: {health['audit_seq']}"
    )
    if not health["ok"]:
        print(report)
        raise SystemExit("daemon reports unhealthy")
    return report


def _audit_replay(args: argparse.Namespace) -> str:
    """Offline byte-verification of a served audit window (no daemon)."""
    import os

    from repro.serve import audit_replay

    path = args.audit or os.path.join(args.state_dir, "audit.jsonl")
    result = audit_replay(path, sample=args.sample, seed=args.seed)
    report = result.report()
    if not result.ok:
        # Print before raising: a digest mismatch must exit non-zero for CI.
        print(report)
        raise SystemExit(
            f"audit-replay failed: {len(result.mismatches)} of "
            f"{len(result.rows)} replayed record(s) did not reproduce "
            f"their served digest"
        )
    return report


def _list(args: argparse.Namespace) -> str:
    return "\n".join(
        [
            "figure5      time vs processors, with/without LB (paper Figure 5)",
            "table1       heterogeneous 3-site grid (paper Table 1)",
            "figures-1-4  SISC/SIAC/AIAC execution flows (paper Figures 1-4)",
            "models       cluster vs grid model comparison (paper §6)",
            "resilience   execution models under injected faults",
            "integrity    silent-corruption injection vs detection/recovery",
            "topology-zoo LB algorithms x topologies x fault schedules",
            "soak         chaos soak: random fault schedules under repro.guard",
            f"ablations    design-knob sweeps: {', '.join(sorted(_ABLATIONS))}",
            "metrics      experiment run with a metrics sidecar (repro.obs)",
            "trace        experiment run exported as a Perfetto trace",
            "bench-compare  flag >threshold regressions between two BENCH_*.json",
            "serve        persistent job-queue daemon over the sweep engine",
            "submit       enqueue a job on a running serve daemon",
            "jobs         list a serve daemon's jobs",
            "result       fetch (or --follow) one job's state and result",
            "health       /healthz-style daemon status; non-zero exit if unhealthy",
            "audit-replay   offline byte-verification of a served audit window",
        ]
    )


def _add_engine_flags(cmd: argparse.ArgumentParser) -> None:
    """``--jobs`` / ``--cache`` / ``--cache-dir`` for every sweep verb."""
    from repro.exec import DEFAULT_CACHE_DIR

    cmd.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent runs (default 1: serial)",
    )
    cmd.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="reuse cached run results (--no-cache to recompute everything)",
    )
    cmd.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"run-cache directory (default {DEFAULT_CACHE_DIR}/)",
    )
    cmd.add_argument(
        "--cache-max-mb",
        type=float,
        default=None,
        help="cap the run cache at this size, evicting least-recently-used "
        "entries (default: unbounded)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, fn, full_flag in [
        ("figure5", _figure5, True),
        ("table1", _table1, True),
        ("figures-1-4", _figures_1_4, False),
        ("models", _models, False),
        ("list", _list, False),
    ]:
        cmd = sub.add_parser(name)
        cmd.set_defaults(handler=fn)
        if full_flag:
            cmd.add_argument(
                "--full",
                action="store_true",
                help="paper-scale run (minutes) instead of the quick one",
            )
            _add_engine_flags(cmd)
        if name == "figure5":
            cmd.add_argument(
                "--json",
                default="",
                help="write rows + digest + engine stats to this JSON file",
            )
            cmd.add_argument(
                "--scale",
                action="store_true",
                help="large-N preset: the same curves out to 1024 ranks "
                "(overrides --full; expect minutes)",
            )
            cmd.add_argument(
                "--problem",
                choices=("synthetic", "brusselator"),
                default="synthetic",
                help="workload driving the sweep: the synthetic "
                "activity-concentration problem (default) or the real "
                "Brusselator PDE numerics",
            )

    resilience_cmd = sub.add_parser(
        "resilience", help="execution models under injected faults"
    )
    resilience_cmd.set_defaults(handler=_resilience)
    resilience_cmd.add_argument(
        "--full",
        action="store_true",
        help="all fault schedules instead of the quick subset",
    )
    resilience_cmd.add_argument(
        "--tiny",
        action="store_true",
        help="smallest sweep (CI smoke: clean baseline + loss-and-crash)",
    )
    resilience_cmd.add_argument(
        "--json",
        default="",
        help="also write the report (rows + digest) to this JSON file",
    )
    _add_engine_flags(resilience_cmd)

    integrity_cmd = sub.add_parser(
        "integrity",
        help="silent-corruption injection vs detection and recovery",
    )
    integrity_cmd.set_defaults(handler=_integrity)
    integrity_cmd.add_argument(
        "--full",
        action="store_true",
        help="all corruption schedules instead of the quick subset",
    )
    integrity_cmd.add_argument(
        "--tiny",
        action="store_true",
        help="smallest sweep (clean baseline + one payload schedule)",
    )
    integrity_cmd.add_argument(
        "--json",
        default="",
        help="also write the report (rows + digest) to this JSON file",
    )
    integrity_cmd.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero on any undetected wrong answer in the detect "
        "arm, or if zero-corruption rows differ between arms",
    )
    _add_engine_flags(integrity_cmd)

    zoo_cmd = sub.add_parser(
        "topology-zoo",
        help="LB algorithm zoo across topologies and fault schedules",
    )
    zoo_cmd.set_defaults(handler=_topology_zoo)
    zoo_cmd.add_argument(
        "--full",
        action="store_true",
        help="full grid (all families/algorithms/schedules) instead of "
        "the quick CI cut",
    )
    zoo_cmd.add_argument(
        "--json",
        default="",
        help="also write rows + winners + digest to this JSON file",
    )
    _add_engine_flags(zoo_cmd)

    for name, fn, helptext in [
        (
            "metrics",
            _metrics,
            "run an experiment and emit its metrics sidecar (+ trace)",
        ),
        (
            "trace",
            _trace,
            "run an experiment and emit a Perfetto-viewable Chrome trace",
        ),
    ]:
        obs_cmd = sub.add_parser(name, help=helptext)
        obs_cmd.set_defaults(handler=fn)
        obs_cmd.add_argument(
            "experiment",
            choices=("figure5", "table1", "resilience"),
            help="which experiment to observe",
        )
        obs_cmd.add_argument(
            "--tiny", action="store_true", help="smallest instance (CI smoke)"
        )
        obs_cmd.add_argument(
            "--full", action="store_true", help="paper-scale run (minutes)"
        )
        obs_cmd.add_argument(
            "--out",
            default="obs",
            help="output prefix: writes PREFIX.metrics.jsonl + PREFIX.trace.json",
        )
        obs_cmd.add_argument(
            "--profile",
            action="store_true",
            help="attach the DES profiler to the traced headline run",
        )
        if name == "metrics":
            obs_cmd.add_argument(
                "--no-trace",
                action="store_true",
                help="skip the traced headline run (metrics sidecar only)",
            )

    soak_cmd = sub.add_parser(
        "soak", help="chaos soak: random fault schedules under repro.guard"
    )
    soak_cmd.set_defaults(handler=_soak)
    soak_cmd.add_argument(
        "--schedules", type=int, default=50, help="random schedules to run"
    )
    soak_cmd.add_argument(
        "--seed", type=int, default=0, help="soak seed (schedules + injector)"
    )
    soak_cmd.add_argument(
        "--models",
        default="",
        help="comma-separated subset of: sisc,siac,aiac,aiac+lb (default all)",
    )
    soak_cmd.add_argument(
        "--out-dir",
        default=".",
        help="directory for minimal-reproducer JSON files",
    )
    soak_cmd.add_argument(
        "--json", default="", help="write the soak report to this JSON file"
    )
    soak_cmd.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip shrinking failing schedules (faster failure turnaround)",
    )
    _add_engine_flags(soak_cmd)

    ablation_cmd = sub.add_parser("ablations")
    ablation_cmd.set_defaults(handler=_ablations)
    ablation_cmd.add_argument(
        "--only",
        default="",
        help=f"comma-separated subset of: {', '.join(sorted(_ABLATIONS))}",
    )
    _add_engine_flags(ablation_cmd)

    bench_cmd = sub.add_parser(
        "bench-compare",
        help="compare two BENCH_*.json reports; non-zero exit on regression",
    )
    bench_cmd.set_defaults(handler=_bench_compare)
    bench_cmd.add_argument("old", help="baseline BENCH_*.json")
    bench_cmd.add_argument("new", help="candidate BENCH_*.json")
    bench_cmd.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="fractional slowdown that counts as a regression (default 0.10)",
    )

    serve_cmd = sub.add_parser(
        "serve", help="persistent job-queue daemon over the sweep engine"
    )
    serve_cmd.set_defaults(handler=_serve)
    serve_cmd.add_argument(
        "--state-dir",
        default=".repro-serve",
        help="WAL + audit log + cache + artifacts directory (default .repro-serve/)",
    )
    serve_cmd.add_argument(
        "--socket",
        default="",
        help="unix-socket path or tcp:HOST:PORT (default STATE_DIR/serve.sock)",
    )
    serve_cmd.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker processes of the persistent sweep engine (default 2)",
    )
    serve_cmd.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="serve repeated specs from the run cache (--no-cache disables)",
    )
    serve_cmd.add_argument(
        "--cache-dir",
        default="",
        help="run-cache directory (default STATE_DIR/cache)",
    )
    serve_cmd.add_argument(
        "--cache-max-mb",
        type=float,
        default=None,
        help="cap the run cache, evicting least-recently-used entries",
    )
    serve_cmd.add_argument(
        "--quota",
        type=int,
        default=16,
        help="per-tenant cap on outstanding (queued + running) jobs",
    )
    serve_cmd.add_argument(
        "--job-timeout",
        type=float,
        default=600.0,
        help="stall watchdog: kill + requeue jobs running longer than this (s)",
    )
    serve_cmd.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="watchdog/cancel requeues before a job is declared killed",
    )
    serve_cmd.add_argument(
        "--retry-backoff",
        type=float,
        default=1.0,
        help="base of the exponential requeue backoff (s)",
    )
    serve_cmd.add_argument(
        "--no-fsync",
        action="store_true",
        help="skip fsync on WAL/audit appends (faster, weaker durability)",
    )

    submit_cmd = sub.add_parser(
        "submit", help="enqueue a job on a running serve daemon"
    )
    submit_cmd.set_defaults(handler=_submit)
    submit_cmd.add_argument(
        "--kind",
        required=True,
        choices=("figure5", "resilience", "soak", "sleep"),
        help="which workload to enqueue",
    )
    submit_cmd.add_argument(
        "--mode",
        default="tiny",
        choices=("tiny", "quick", "full"),
        help="scenario preset for figure5/resilience (default tiny)",
    )
    submit_cmd.add_argument(
        "--schedules", type=int, default=5, help="soak: random schedules"
    )
    submit_cmd.add_argument("--seed", type=int, default=0, help="soak seed")
    submit_cmd.add_argument(
        "--seconds", type=float, default=0.1, help="sleep: seconds per task"
    )
    submit_cmd.add_argument(
        "--tasks", type=int, default=1, help="sleep: number of tasks"
    )
    submit_cmd.add_argument("--tenant", default="default")
    submit_cmd.add_argument(
        "--priority", type=int, default=0, help="higher runs first"
    )
    submit_cmd.add_argument(
        "--wait",
        action="store_true",
        help="block until the job is terminal; non-zero exit unless done",
    )
    submit_cmd.add_argument("--socket", default=_DEFAULT_SOCKET)

    jobs_cmd = sub.add_parser("jobs", help="list a serve daemon's jobs")
    jobs_cmd.set_defaults(handler=_jobs)
    jobs_cmd.add_argument("--tenant", default="", help="filter to one tenant")
    jobs_cmd.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    jobs_cmd.add_argument("--socket", default=_DEFAULT_SOCKET)

    result_cmd = sub.add_parser(
        "result", help="fetch (or --follow) one job's state and result"
    )
    result_cmd.set_defaults(handler=_result)
    result_cmd.add_argument("job_id")
    result_cmd.add_argument(
        "--follow",
        action="store_true",
        help="stream state transitions until the job is terminal",
    )
    result_cmd.add_argument("--socket", default=_DEFAULT_SOCKET)

    health_cmd = sub.add_parser(
        "health", help="daemon status; non-zero exit if unhealthy"
    )
    health_cmd.set_defaults(handler=_health)
    health_cmd.add_argument(
        "--json", action="store_true", help="full health document as JSON"
    )
    health_cmd.add_argument("--socket", default=_DEFAULT_SOCKET)

    audit_cmd = sub.add_parser(
        "audit-replay",
        help="re-run a sample of served jobs offline and byte-verify digests",
    )
    audit_cmd.set_defaults(handler=_audit_replay)
    audit_cmd.add_argument(
        "--state-dir",
        default=".repro-serve",
        help="serve state directory holding audit.jsonl",
    )
    audit_cmd.add_argument(
        "--audit", default="", help="explicit audit log path (overrides --state-dir)"
    )
    audit_cmd.add_argument(
        "--sample",
        type=int,
        default=5,
        help="done-records to replay (seeded sample; default 5)",
    )
    audit_cmd.add_argument("--seed", type=int, default=0)

    solve_cmd = sub.add_parser("solve", help="run a one-off custom solve")
    solve_cmd.set_defaults(handler=_solve)
    solve_cmd.add_argument(
        "--problem",
        choices=("brusselator", "heat", "synthetic"),
        default="brusselator",
    )
    solve_cmd.add_argument("--size", type=int, default=48, help="components")
    solve_cmd.add_argument("--ranks", type=int, default=4, help="processors")
    solve_cmd.add_argument(
        "--slow-factor",
        type=float,
        default=1.0,
        help="make the last host this many times slower (heterogeneity)",
    )
    solve_cmd.add_argument(
        "--model", choices=("aiac", "sisc", "siac"), default="aiac"
    )
    solve_cmd.add_argument(
        "--lb", action="store_true", help="enable dynamic load balancing"
    )
    solve_cmd.add_argument("--lb-period", type=int, default=10)
    solve_cmd.add_argument("--tolerance", type=float, default=1e-7)
    solve_cmd.add_argument(
        "--gantt", action="store_true", help="print the execution Gantt"
    )
    solve_cmd.add_argument(
        "--json", default="", help="write the run summary to this JSON file"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler: Callable[[argparse.Namespace], str] = args.handler
    start = time.perf_counter()
    report = handler(args)
    try:
        print(report)
        if args.command not in ("list",):
            print(
                f"\n[{args.command} completed in "
                f"{time.perf_counter() - start:.1f}s]"
            )
    except BrokenPipeError:  # e.g. ``repro result ... | head``
        return 0
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
