"""Job lifecycle: states, records, per-tenant quotas and usage accounting.

The serve daemon's unit of work is a **job** — one whole sweep
(figure5 / resilience / soak / sleep spec), which the executor expands
into engine tasks over the persistent worker pool.  A job moves
through::

    queued ──► running ──► done
       ▲          │ ├────► failed   (task raised / retries exhausted)
       │          │ └────► killed   (operator kill verb)
       └──────────┘         (stall-watchdog kill + requeue w/ backoff)

Every transition is WAL-logged by the daemon before it is acknowledged;
this module only holds the in-memory table the WAL folds back into.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

__all__ = ["Job", "JobTable", "QuotaError", "STATES", "TERMINAL_STATES"]

STATES = ("queued", "running", "done", "failed", "killed")
TERMINAL_STATES = ("done", "failed", "killed")


class QuotaError(RuntimeError):
    """A tenant exceeded its outstanding-job quota (admission rejection)."""


@dataclass
class Job:
    """One submitted job; the WAL's ``submit`` record mirrors this."""

    job_id: str
    tenant: str
    priority: int
    spec: dict[str, Any]
    max_retries: int
    submitted_seq: int
    state: str = "queued"
    attempts: int = 0
    #: Wall-clock gate: a requeued job is not eligible before this time
    #: (stall-watchdog backoff).  0.0 = immediately eligible.
    not_before: float = 0.0
    result: dict[str, Any] | None = None
    error: str = ""
    #: Operator kill requested while running (distinguishes the kill
    #: verb from a watchdog stall kill, which requeues instead).
    kill_requested: bool = field(default=False, repr=False)
    #: Wall-clock bookkeeping (never digest material).
    submitted_at: float = field(default=0.0, repr=False)
    started_at: float = field(default=0.0, repr=False)
    finished_at: float = field(default=0.0, repr=False)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_record(self) -> dict[str, Any]:
        """The WAL ``submit`` payload: everything recovery needs."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "priority": self.priority,
            "spec": self.spec,
            "max_retries": self.max_retries,
            "submitted_seq": self.submitted_seq,
            "state": self.state,
            "attempts": self.attempts,
            "not_before": self.not_before,
        }

    def summary(self) -> dict[str, Any]:
        """The ``repro jobs`` row (no result payload)."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "kind": self.spec.get("kind", "?"),
            "priority": self.priority,
            "state": self.state,
            "attempts": self.attempts,
            "error": self.error,
        }

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "Job":
        return cls(
            job_id=record["job_id"],
            tenant=record["tenant"],
            priority=int(record["priority"]),
            spec=dict(record["spec"]),
            max_retries=int(record["max_retries"]),
            submitted_seq=int(record["submitted_seq"]),
            state=record.get("state", "queued"),
            attempts=int(record.get("attempts", 0)),
            not_before=float(record.get("not_before", 0.0)),
            result=record.get("result"),
            error=record.get("error", "") or "",
        )


class JobTable:
    """All jobs the daemon knows about, plus tenant quota/usage state.

    Thread-unsafe on purpose: the daemon guards it with one lock (the
    same lock that serialises WAL appends, so table and log cannot
    disagree about ordering).
    """

    def __init__(self, *, quota: int = 16) -> None:
        if quota < 1:
            raise ValueError(f"quota must be >= 1, got {quota}")
        self.quota = quota
        self.jobs: dict[str, Job] = {}
        #: Fair-share accounting: accumulated execution seconds per
        #: tenant (wall-clock; scheduling input, never digest material).
        self.usage_s: dict[str, float] = {}
        self._next_id = 1

    # ------------------------------------------------------------------
    def new_job_id(self) -> str:
        job_id = f"j{self._next_id:06d}"
        self._next_id += 1
        return job_id

    def outstanding(self, tenant: str) -> int:
        return sum(
            1
            for job in self.jobs.values()
            if job.tenant == tenant and not job.terminal
        )

    def admit(self, job: Job) -> None:
        """Quota admission gate + insertion (raises, never partial)."""
        if self.outstanding(job.tenant) >= self.quota:
            raise QuotaError(
                f"tenant {job.tenant!r} has {self.outstanding(job.tenant)} "
                f"outstanding job(s); quota is {self.quota}"
            )
        if job.job_id in self.jobs:
            raise ValueError(f"duplicate job id {job.job_id!r}")
        job.submitted_at = time.time()
        self.jobs[job.job_id] = job

    # ------------------------------------------------------------------
    def queued(self) -> Iterable[Job]:
        return (j for j in self.jobs.values() if j.state == "queued")

    def running(self) -> list[Job]:
        return [j for j in self.jobs.values() if j.state == "running"]

    def counts(self) -> dict[str, int]:
        counts = {state: 0 for state in STATES}
        for job in self.jobs.values():
            counts[job.state] += 1
        return counts

    def charge(self, tenant: str, seconds: float) -> None:
        self.usage_s[tenant] = self.usage_s.get(tenant, 0.0) + seconds

    # ------------------------------------------------------------------
    def restore(self, records: Mapping[str, Mapping[str, Any]]) -> list[Job]:
        """Load folded WAL records; returns jobs needing a requeue.

        Jobs that were ``running`` (or already ``queued``) at the crash
        come back as recovery candidates; terminal jobs are restored
        as-is so their results keep being served.  The id counter
        resumes past the highest restored id.
        """
        to_requeue: list[Job] = []
        for record in records.values():
            job = Job.from_record(record)
            self.jobs[job.job_id] = job
            self._next_id = max(self._next_id, int(job.job_id[1:]) + 1)
            if job.state == "running":
                to_requeue.append(job)
            elif job.state == "queued":
                to_requeue.append(job)
        return sorted(to_requeue, key=lambda j: j.submitted_seq)
