"""JSON-lines protocol over a unix socket (or localhost TCP) + client.

Framing
-------
One request per connection: the client connects, sends exactly one
JSON object on one line, and reads newline-delimited JSON responses
until the server closes the connection.  Most verbs answer with a
single line; ``result`` with ``follow=true`` *streams* — one
``{"event": "state", ...}`` line per observed transition, then a final
``{"event": "result", ...}`` line when the job reaches a terminal
state.  Every response line carries ``"ok"``; a protocol-level failure
is ``{"ok": false, "error": "..."}``.

Verbs: ``submit``, ``jobs``, ``result``, ``kill``, ``health``,
``metrics``, ``shutdown`` — see :class:`repro.serve.daemon.ServeDaemon`
for semantics and ``docs/serving.md`` for the full request/response
catalogue.

Addresses
---------
A plain string is a unix-socket path; ``"tcp:HOST:PORT"`` selects
localhost TCP (for platforms or CI sandboxes where ``AF_UNIX`` paths
are too long — the kernel caps them at ~107 bytes).
"""

from __future__ import annotations

import json
import random
import socket
import time
from typing import Any, Iterator

__all__ = ["PROTOCOL_SCHEMA", "ServeClient", "ServeError", "parse_address"]

PROTOCOL_SCHEMA = "repro-serve-proto/1"


class ServeError(RuntimeError):
    """The daemon answered ``ok: false`` (or the stream broke)."""


def parse_address(address: str) -> tuple[str, Any]:
    """``("unix", path)`` or ``("tcp", (host, port))``."""
    if address.startswith("tcp:"):
        _, host, port = address.split(":", 2)
        return "tcp", (host, int(port))
    return "unix", address


def _connect(address: str, timeout: float) -> socket.socket:
    family, target = parse_address(address)
    if family == "tcp":
        return socket.create_connection(target, timeout=timeout)
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    sock.connect(target)
    return sock


#: Connect-phase errors that are safe to retry: nothing has been sent
#: yet, so a retry cannot duplicate a request.  Refused/reset covers a
#: daemon mid-restart; FileNotFoundError covers a unix socket path that
#: is not bound yet; TimeoutError covers a SYN lost to a saturated
#: accept queue (``socket.timeout`` is an alias since 3.10).
_TRANSIENT_CONNECT = (
    ConnectionRefusedError,
    ConnectionResetError,
    ConnectionAbortedError,
    FileNotFoundError,
    TimeoutError,
    InterruptedError,
)


class ServeClient:
    """Client for one serve daemon; every call is one connection.

    Connectionless-per-request keeps the daemon's handler model trivial
    (a request cannot interleave with another on the same socket) and
    makes the client trivially usable from many threads at once — the
    benchmark drives N submitting clients this way.

    ``connect_timeout`` bounds the dial separately from ``timeout``
    (the read deadline): a dead daemon fails in seconds instead of
    hanging for the full read budget.  Transient connect errors are
    retried up to ``connect_retries`` times with jittered exponential
    backoff — but only the dial is ever retried; once the request line
    has been written, a failure propagates (the daemon may already have
    acted on it, and verbs like ``submit`` are not idempotent).
    """

    def __init__(
        self,
        address: str,
        *,
        timeout: float = 30.0,
        connect_timeout: float = 5.0,
        connect_retries: int = 3,
        retry_backoff: float = 0.05,
    ) -> None:
        self.address = address
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.connect_retries = connect_retries
        self.retry_backoff = retry_backoff

    # ------------------------------------------------------------------
    def _connect_with_retry(self) -> socket.socket:
        """Dial the daemon, retrying transient connect-phase failures."""
        attempt = 0
        while True:
            try:
                return _connect(self.address, self.connect_timeout)
            except _TRANSIENT_CONNECT as exc:
                attempt += 1
                if attempt > self.connect_retries:
                    raise ServeError(
                        f"cannot connect to daemon at {self.address!r} "
                        f"after {attempt} attempt(s): {exc}"
                    ) from exc
                delay = self.retry_backoff * (2 ** (attempt - 1))
                time.sleep(delay * (1.0 + random.random()))

    def _request_lines(
        self, request: dict[str, Any], timeout: float | None = None
    ) -> Iterator[dict[str, Any]]:
        sock = self._connect_with_retry()
        sock.settimeout(timeout if timeout is not None else self.timeout)
        try:
            with sock.makefile("rw", encoding="utf-8", newline="\n") as fh:
                fh.write(json.dumps(request) + "\n")
                fh.flush()
                sock.shutdown(socket.SHUT_WR)
                for line in fh:
                    if not line.strip():
                        continue
                    yield json.loads(line)
        finally:
            sock.close()

    def request(
        self, verb: str, *, timeout: float | None = None, **fields: Any
    ) -> dict[str, Any]:
        """Single-response verbs; raises :class:`ServeError` on failure."""
        for response in self._request_lines({"verb": verb, **fields}, timeout):
            if not response.get("ok", False):
                raise ServeError(response.get("error", "daemon error"))
            return response
        raise ServeError(f"daemon closed the connection on {verb!r}")

    # ------------------------------------------------------------------
    def submit(
        self,
        spec: dict[str, Any],
        *,
        tenant: str = "default",
        priority: int = 0,
    ) -> str:
        """Enqueue a job; returns its id (WAL-durable before the ack)."""
        response = self.request(
            "submit", spec=spec, tenant=tenant, priority=priority
        )
        return response["job_id"]

    def jobs(self, *, tenant: str | None = None) -> list[dict[str, Any]]:
        response = self.request("jobs", **({"tenant": tenant} if tenant else {}))
        return response["jobs"]

    def result(
        self,
        job_id: str,
        *,
        follow: bool = False,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        """Fetch a job's state/result.

        ``follow=True`` blocks (streaming transitions) until the job is
        terminal, then returns the final job record including its
        result payload.  Without ``follow`` the current state is
        returned immediately.
        """
        if not follow:
            return self.request("result", job_id=job_id)["job"]
        last: dict[str, Any] | None = None
        for response in self._request_lines(
            {"verb": "result", "job_id": job_id, "follow": True},
            timeout if timeout is not None else 3600.0,
        ):
            if not response.get("ok", False):
                raise ServeError(response.get("error", "daemon error"))
            if response.get("event") == "result":
                return response["job"]
            last = response
        raise ServeError(
            f"stream for {job_id} ended without a result "
            f"(last event: {last})"
        )

    def follow(self, job_id: str) -> Iterator[dict[str, Any]]:
        """Yield raw stream events for ``repro result --follow``."""
        for response in self._request_lines(
            {"verb": "result", "job_id": job_id, "follow": True}, 3600.0
        ):
            if not response.get("ok", False):
                raise ServeError(response.get("error", "daemon error"))
            yield response
            if response.get("event") == "result":
                return

    def kill(self, job_id: str) -> dict[str, Any]:
        return self.request("kill", job_id=job_id)

    def health(self) -> dict[str, Any]:
        return self.request("health")["health"]

    def metrics(self) -> list[dict[str, Any]]:
        return self.request("metrics")["metrics"]

    def shutdown(self) -> None:
        self.request("shutdown")

    # ------------------------------------------------------------------
    def wait_until_up(self, *, timeout: float = 10.0) -> dict[str, Any]:
        """Poll ``health`` until the daemon answers (startup barrier)."""
        deadline = time.monotonic() + timeout
        last_error: Exception | None = None
        while time.monotonic() < deadline:
            try:
                return self.health()
            except (OSError, ServeError, ValueError) as exc:
                last_error = exc
                time.sleep(0.05)
        raise ServeError(
            f"daemon at {self.address!r} not up after {timeout}s: {last_error}"
        )
