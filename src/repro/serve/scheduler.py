"""Priority + fair-share job scheduling.

The daemon runs one job at a time through the persistent
:class:`~repro.exec.SweepEngine` (each job is itself a parallel sweep,
so intra-job tasks already saturate the worker pool); what the
scheduler decides is **which queued job goes next**:

1. higher ``priority`` strictly first (an integer class, default 0 —
   operators reserve positive classes for interactive traffic);
2. within a class, the tenant with the least accumulated execution
   seconds (``JobTable.usage_s``) — classic fair share, so a tenant
   dumping 100 soak jobs cannot starve a tenant submitting its first
   figure5;
3. ties broken by submission order (``submitted_seq``), which makes the
   decision fully deterministic given the same table state.

Jobs whose ``not_before`` lies in the future (stall-watchdog backoff)
are ineligible until the clock passes the gate.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.serve.jobs import Job

__all__ = ["FairShareScheduler"]


class FairShareScheduler:
    """Stateless picker over the job table (state lives in the table)."""

    def pick(
        self,
        queued: Iterable[Job],
        usage_s: Mapping[str, float],
        now: float,
    ) -> Job | None:
        """The next job to run, or ``None`` when nothing is eligible."""
        eligible = [job for job in queued if job.not_before <= now]
        if not eligible:
            return None
        return min(
            eligible,
            key=lambda job: (
                -job.priority,
                usage_s.get(job.tenant, 0.0),
                job.submitted_seq,
            ),
        )

    @staticmethod
    def fairness(usage_s: Mapping[str, float]) -> dict[str, Any]:
        """Operator-facing fairness snapshot: share per tenant.

        ``max_over_min`` is the headline imbalance figure (1.0 =
        perfectly fair among tenants that ran anything).
        """
        served = {t: s for t, s in usage_s.items() if s > 0.0}
        total = sum(served.values())
        shares = {
            tenant: seconds / total for tenant, seconds in sorted(served.items())
        } if total > 0 else {}
        ratio = (
            max(served.values()) / min(served.values())
            if len(served) >= 2
            else 1.0
        )
        return {"shares": shares, "max_over_min": ratio}
