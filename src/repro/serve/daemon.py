"""The ``repro serve`` daemon: durable queue + scheduler + health layer.

Thread architecture (all inside one process)::

    socket server (ThreadingMixIn)   one short-lived handler per request
        │  submit/jobs/result/kill/health/metrics/shutdown
        ▼
    JobTable + JobWAL + AuditLog     guarded by one lock (_state)
        ▲
        │ pick (priority + fair share)
    dispatcher thread ── executes one job at a time through the
        │                persistent SweepEngine (intra-job tasks fan
        │                out over its worker pool / run cache)
    watchdog thread ──── stall kills (engine.cancel → kill + requeue
                         with exponential backoff, capped retries),
                         idle pool reaping, queue-depth gauges

Durability contract: a ``submit`` is WAL-appended (fsync) *before* the
client sees its job id; every state transition is WAL-appended before
followers are woken.  ``kill -9`` at any point therefore loses at most
un-acked work: on restart, jobs that were queued or running are
requeued (the interrupted attempt is visible in ``attempts``), and
terminal jobs keep serving their recorded results.  Completed jobs are
additionally recorded in the append-only audit log as
``config_digest → result_digest`` for offline byte-verification
(:func:`repro.serve.audit.audit_replay`).

The guard subsystem is the service's health layer: admission gates
reject bad specs at the door (:func:`repro.serve.spec.validate_spec`),
the stall watchdog plays the same role as
:class:`repro.guard.watchdogs`'s virtual-time stall detector but in
wall-clock, and ``health`` is the ``/healthz``-style liveness verb.
"""

from __future__ import annotations

import os
import socket
import socketserver
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.exec import RunCache, SweepCancelled, SweepEngine
from repro.obs import MetricsRegistry
from repro.serve.audit import AuditLog
from repro.serve.jobs import Job, JobTable, QuotaError
from repro.serve.protocol import parse_address
from repro.serve.scheduler import FairShareScheduler
from repro.serve.spec import AdmissionError, config_digest, execute_spec, validate_spec
from repro.serve.wal import JobWAL, fold, replay

__all__ = ["ServeConfig", "ServeDaemon"]

#: Latency histogram buckets (seconds, wall-clock): sub-100ms acks out
#: to multi-minute full sweeps.
_LATENCY_BUCKETS = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0)


@dataclass
class ServeConfig:
    """Everything ``repro serve`` can set from the command line."""

    state_dir: str = ".repro-serve"
    #: Socket address: unix path, or ``tcp:HOST:PORT``.  Empty =
    #: ``{state_dir}/serve.sock``.
    address: str = ""
    #: Worker processes of the persistent sweep engine.
    workers: int = 2
    cache: bool = True
    cache_dir: str = ""
    cache_max_mb: float | None = None
    #: Per-tenant cap on outstanding (queued + running) jobs.
    quota: int = 16
    #: Stall watchdog: a job running longer than this is killed and
    #: requeued with backoff.
    job_timeout_s: float = 600.0
    max_retries: int = 2
    retry_backoff_s: float = 1.0
    #: Idle worker-pool teardown horizon.
    idle_pool_s: float = 60.0
    #: fsync WAL/audit appends (benchmarks may relax this).
    durable: bool = True

    def resolved_address(self) -> str:
        return self.address or os.path.join(self.state_dir, "serve.sock")


class _Handler(socketserver.StreamRequestHandler):
    """One request per connection; dispatches into the daemon."""

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        daemon: "ServeDaemon" = self.server.daemon  # type: ignore[attr-defined]
        import json

        try:
            line = self.rfile.readline()
            if not line:
                return
            request = json.loads(line.decode("utf-8"))
        except (ValueError, OSError) as exc:
            self._send({"ok": False, "error": f"bad request: {exc}"})
            return
        try:
            daemon.handle(request, self._send)
        except BrokenPipeError:
            pass  # client went away mid-stream
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            try:
                self._send({"ok": False, "error": f"{type(exc).__name__}: {exc}"})
            except OSError:
                pass

    def _send(self, obj: dict[str, Any]) -> None:
        import json

        self.wfile.write((json.dumps(obj) + "\n").encode("utf-8"))
        self.wfile.flush()


class _ThreadingUnixServer(socketserver.ThreadingMixIn, socketserver.UnixStreamServer):
    daemon_threads = True
    allow_reuse_address = True


class _ThreadingTCPServer(socketserver.ThreadingMixIn, socketserver.TCPServer):
    daemon_threads = True
    allow_reuse_address = True


class ServeDaemon:
    """The long-lived job-queue service (see module docstring)."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        cfg = self.config
        os.makedirs(cfg.state_dir, exist_ok=True)
        self._state = threading.Lock()
        #: Notified on every job state transition (followers wait here).
        self._changed = threading.Condition(self._state)
        self.wal = JobWAL(
            os.path.join(cfg.state_dir, "wal.jsonl"), durable=cfg.durable
        )
        self.audit = AuditLog(
            os.path.join(cfg.state_dir, "audit.jsonl"), durable=cfg.durable
        )
        self.table = JobTable(quota=cfg.quota)
        self.scheduler = FairShareScheduler()
        self.registry = MetricsRegistry()
        cache = None
        if cfg.cache:
            cache_dir = cfg.cache_dir or os.path.join(cfg.state_dir, "cache")
            max_bytes = (
                int(cfg.cache_max_mb * 1e6) if cfg.cache_max_mb else None
            )
            cache = RunCache(cache_dir, max_bytes=max_bytes)
        # min_pool_tasks=1: every job task runs in a worker process, so
        # the stall watchdog can actually kill it.
        self.engine = SweepEngine(
            jobs=cfg.workers, cache=cache, min_pool_tasks=1
        )
        self._recover()

        self._stop = threading.Event()
        self._server: socketserver.BaseServer | None = None
        self._threads: list[threading.Thread] = []
        self._current: Job | None = None  # job being executed, if any
        self._started_at = time.time()
        self._started_mono = time.monotonic()

    # ------------------------------------------------------------------
    # Startup / shutdown
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Fold the WAL back into the table; requeue interrupted jobs.

        Silent storage corruption surfaces here: lines the WAL replay
        quarantined (damaged JSON, CRC mismatches) are counted, and any
        ``state`` record whose ``submit`` was among them is tolerated as
        an orphan instead of aborting recovery of every healthy job.
        """
        quarantine: list[dict[str, Any]] = []
        records = replay(self.wal.path, quarantine=quarantine)
        orphans: list[dict[str, Any]] = []
        jobs = fold(
            records, orphan_states=orphans if quarantine else None
        )
        if quarantine:
            self.registry.counter("serve.wal_quarantined").inc(
                len(quarantine)
            )
        if orphans:
            self.registry.counter("serve.wal_orphan_states").inc(
                len(orphans)
            )
        if self.wal.tail_healed:
            self.registry.counter("serve.wal_tail_healed").inc()
        to_requeue = self.table.restore(jobs)
        for job in to_requeue:
            if job.state == "running":
                # The attempt died with the previous daemon process.
                job.state = "queued"
                job.not_before = 0.0
                self.wal.state(
                    job.job_id, "queued", attempts=job.attempts,
                    error="requeued by crash recovery",
                )
                self.registry.counter("serve.recovered_jobs").inc()
            # queued jobs need no new record: the WAL already says queued.

    def start(self) -> None:
        """Bind the socket and start dispatcher/watchdog/server threads."""
        address = self.config.resolved_address()
        family, target = parse_address(address)
        if family == "unix":
            try:
                os.unlink(target)
            except FileNotFoundError:
                pass
            self._server = _ThreadingUnixServer(target, _Handler)
        else:
            self._server = _ThreadingTCPServer(target, _Handler)
        self._server.daemon = self  # type: ignore[attr-defined]
        self._threads = [
            threading.Thread(
                target=self._server.serve_forever,
                kwargs={"poll_interval": 0.05},
                name="serve-socket",
                daemon=True,
            ),
            threading.Thread(
                target=self._dispatch_loop, name="serve-dispatch", daemon=True
            ),
            threading.Thread(
                target=self._watchdog_loop, name="serve-watchdog", daemon=True
            ),
        ]
        for thread in self._threads:
            thread.start()

    def stop(self) -> None:
        """Graceful shutdown: requeue the in-flight job, release the port."""
        if self._stop.is_set():
            return
        self._stop.set()
        self.engine.cancel()  # unblock the dispatcher if mid-job
        with self._changed:
            self._changed.notify_all()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        for thread in self._threads:
            thread.join(timeout=10.0)
        self.engine.close()
        family, target = parse_address(self.config.resolved_address())
        if family == "unix":
            try:
                os.unlink(target)
            except OSError:
                pass
        self.wal.close()
        self.audit.close()

    def serve_forever(self) -> None:
        """Foreground mode for the CLI: start, then block until stopped."""
        self.start()
        try:
            while not self._stop.wait(timeout=0.5):
                pass
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        finally:
            self.stop()

    # ------------------------------------------------------------------
    # Request handling (socket threads)
    # ------------------------------------------------------------------
    def handle(self, request: dict[str, Any], send) -> None:
        verb = request.get("verb")
        if verb == "submit":
            send(self._handle_submit(request))
        elif verb == "jobs":
            send(self._handle_jobs(request))
        elif verb == "result":
            self._handle_result(request, send)
        elif verb == "kill":
            send(self._handle_kill(request))
        elif verb == "health":
            send({"ok": True, "health": self.health()})
        elif verb == "metrics":
            with self._state:
                self._scrape_locked()
                snapshot = self.registry.snapshot()
            send({"ok": True, "metrics": snapshot})
        elif verb == "shutdown":
            send({"ok": True})
            threading.Thread(target=self.stop, daemon=True).start()
        else:
            send({"ok": False, "error": f"unknown verb {verb!r}"})

    def _handle_submit(self, request: dict[str, Any]) -> dict[str, Any]:
        tenant = str(request.get("tenant") or "default")
        priority = int(request.get("priority", 0))
        try:
            spec = validate_spec(request.get("spec", {}))
        except AdmissionError as exc:
            self.registry.counter(
                "serve.admission_rejected", reason="spec"
            ).inc()
            return {"ok": False, "error": f"admission: {exc}"}
        with self._changed:
            job = Job(
                job_id=self.table.new_job_id(),
                tenant=tenant,
                priority=priority,
                spec=spec,
                max_retries=self.config.max_retries,
                submitted_seq=self.wal.seq + 1,
            )
            try:
                self.table.admit(job)
            except QuotaError as exc:
                self.registry.counter(
                    "serve.admission_rejected", reason="quota"
                ).inc()
                return {"ok": False, "error": f"admission: {exc}"}
            # WAL before ack: the job id must never be handed out for a
            # job a crash could forget.
            self.wal.submit(job.to_record())
            self.registry.counter(
                "serve.jobs_submitted", tenant=tenant, kind=spec["kind"]
            ).inc()
            self._changed.notify_all()
        return {"ok": True, "job_id": job.job_id, "state": job.state}

    def _handle_jobs(self, request: dict[str, Any]) -> dict[str, Any]:
        tenant = request.get("tenant")
        with self._state:
            rows = [
                job.summary()
                for job in sorted(
                    self.table.jobs.values(), key=lambda j: j.job_id
                )
                if tenant is None or job.tenant == tenant
            ]
        return {"ok": True, "jobs": rows}

    def _job_payload(self, job: Job) -> dict[str, Any]:
        payload = job.summary()
        payload["result"] = job.result
        return payload

    def _handle_result(self, request: dict[str, Any], send) -> None:
        job_id = request.get("job_id", "")
        follow = bool(request.get("follow", False))
        with self._changed:
            job = self.table.jobs.get(job_id)
            if job is None:
                send({"ok": False, "error": f"unknown job {job_id!r}"})
                return
            if not follow or job.terminal:
                event = "result" if job.terminal else "state"
                send({"ok": True, "event": event, "job": self._job_payload(job)})
                return
            last_state = None
            while True:
                if job.state != last_state:
                    last_state = job.state
                    if job.terminal:
                        send(
                            {
                                "ok": True,
                                "event": "result",
                                "job": self._job_payload(job),
                            }
                        )
                        return
                    send(
                        {
                            "ok": True,
                            "event": "state",
                            "job_id": job.job_id,
                            "state": job.state,
                            "attempts": job.attempts,
                        }
                    )
                if self._stop.is_set():
                    send({"ok": False, "error": "daemon shutting down"})
                    return
                self._changed.wait(timeout=0.5)

    def _handle_kill(self, request: dict[str, Any]) -> dict[str, Any]:
        job_id = request.get("job_id", "")
        with self._changed:
            job = self.table.jobs.get(job_id)
            if job is None:
                return {"ok": False, "error": f"unknown job {job_id!r}"}
            if job.terminal:
                return {"ok": True, "job_id": job_id, "state": job.state}
            if job.state == "queued":
                self._transition_locked(job, "killed", error="killed by operator")
                return {"ok": True, "job_id": job_id, "state": job.state}
            # Running: flag it and cancel the engine; the dispatcher
            # observes kill_requested and finalises the state.
            job.kill_requested = True
            self.engine.cancel()
            return {"ok": True, "job_id": job_id, "state": "killing"}

    # ------------------------------------------------------------------
    # State transitions (hold the lock)
    # ------------------------------------------------------------------
    def _transition_locked(self, job: Job, state: str, **fields: Any) -> None:
        job.state = state
        for key in ("attempts", "error", "result", "not_before"):
            if key in fields:
                setattr(job, key, fields[key])
        self.wal.state(job.job_id, state, **fields)
        if state in ("done", "failed", "killed"):
            job.finished_at = time.time()
            self.registry.counter("serve.jobs_completed", state=state).inc()
            self.audit.append(
                job_id=job.job_id,
                tenant=job.tenant,
                spec=job.spec,
                config_digest=config_digest(job.spec),
                result_digest=(job.result or {}).get("digest"),
                state=state,
            )
            if job.submitted_at:
                self.registry.histogram(
                    "serve.job_latency_s", buckets=_LATENCY_BUCKETS
                ).observe(min(job.finished_at - job.submitted_at, 300.0))
        self._changed.notify_all()

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            with self._changed:
                job = self.scheduler.pick(
                    self.table.queued(), self.table.usage_s, time.time()
                )
                if job is None:
                    self._changed.wait(timeout=0.2)
                    continue
                job.attempts += 1
                job.started_at = time.time()
                self._transition_locked(job, "running", attempts=job.attempts)
                self._current = job
                # A cancel aimed at the *previous* job (watchdog firing
                # as it finished) must not leak into this one.  Never
                # reset during shutdown: stop()'s cancel must stick.
                if not self._stop.is_set():
                    self.engine.reset_cancel()
            self._execute(job)
            with self._state:
                self._current = None
        # Shutdown: requeue whatever was mid-flight so recovery resumes it.
        with self._changed:
            job = self._current
            if job is not None and job.state == "running":
                self._transition_locked(
                    job, "queued", error="requeued by daemon shutdown"
                )
                self._current = None

    def _execute(self, job: Job) -> None:
        artifacts = os.path.join(self.config.state_dir, "artifacts", job.job_id)
        os.makedirs(artifacts, exist_ok=True)
        t0 = time.perf_counter()
        try:
            payload = execute_spec(
                job.spec, engine=self.engine, artifacts_dir=artifacts
            )
        except SweepCancelled:
            elapsed = time.perf_counter() - t0
            with self._changed:
                if not self._stop.is_set():
                    self.engine.reset_cancel()
                self.table.charge(job.tenant, elapsed)
                if self._stop.is_set():
                    self._transition_locked(
                        job, "queued", error="requeued by daemon shutdown"
                    )
                elif job.kill_requested:
                    self._transition_locked(
                        job, "killed", error="killed by operator"
                    )
                elif job.attempts > job.max_retries:
                    self._transition_locked(
                        job,
                        "killed",
                        error=(
                            f"stall watchdog: attempt {job.attempts} "
                            f"exceeded {self.config.job_timeout_s:g}s; "
                            f"retries exhausted"
                        ),
                    )
                else:
                    backoff = self.config.retry_backoff_s * (
                        2.0 ** (job.attempts - 1)
                    )
                    self._transition_locked(
                        job,
                        "queued",
                        not_before=time.time() + backoff,
                        error=(
                            f"stall watchdog: attempt {job.attempts} "
                            f"killed after {self.config.job_timeout_s:g}s; "
                            f"requeued with {backoff:g}s backoff"
                        ),
                    )
            return
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            elapsed = time.perf_counter() - t0
            with self._changed:
                self.table.charge(job.tenant, elapsed)
                self._transition_locked(
                    job, "failed", error=f"{type(exc).__name__}: {exc}"
                )
            return
        elapsed = time.perf_counter() - t0
        with self._changed:
            self.table.charge(job.tenant, elapsed)
            self.registry.histogram(
                "serve.job_exec_s", buckets=_LATENCY_BUCKETS, kind=job.spec["kind"]
            ).observe(min(elapsed, 300.0))
            self._transition_locked(job, "done", result=payload)

    # ------------------------------------------------------------------
    # Watchdog (guard-as-health-layer)
    # ------------------------------------------------------------------
    def _watchdog_loop(self) -> None:
        while not self._stop.wait(timeout=0.1):
            with self._state:
                job = self._current
                stalled = (
                    job is not None
                    and job.state == "running"
                    and time.time() - job.started_at > self.config.job_timeout_s
                    and not job.kill_requested
                )
            if stalled:
                self.registry.counter("serve.watchdog_kills").inc()
                self.engine.cancel()
                # The dispatcher's SweepCancelled handler requeues/kills.
                time.sleep(0.2)
            self.engine.maybe_reap(self.config.idle_pool_s)

    # ------------------------------------------------------------------
    # Health / metrics
    # ------------------------------------------------------------------
    def _scrape_locked(self) -> None:
        counts = self.table.counts()
        for state, count in counts.items():
            self.registry.gauge("serve.jobs_in_state", state=state).set(count)
        self.registry.gauge("serve.queue_depth").set(counts["queued"])
        self.registry.gauge("serve.wal_seq").set(self.wal.seq)
        fairness = self.scheduler.fairness(self.table.usage_s)
        self.registry.gauge("serve.fairness_max_over_min").set(
            fairness["max_over_min"]
        )
        for tenant, seconds in sorted(self.table.usage_s.items()):
            self.registry.gauge("serve.tenant_usage_s", tenant=tenant).set(
                seconds
            )
        stats = self.engine.stats
        lookups = stats.hits + stats.misses
        self.registry.gauge("serve.cache_hit_rate").set(
            stats.hits / lookups if lookups else 0.0
        )
        self.engine.export_metrics(self.registry, run="serve")

    def health(self) -> dict[str, Any]:
        """The ``/healthz`` payload."""
        with self._state:
            counts = self.table.counts()
            threads_ok = all(t.is_alive() for t in self._threads[1:]) or not (
                self._threads
            )
            stats = self.engine.stats
            lookups = stats.hits + stats.misses
            return {
                "ok": bool(threads_ok and not self._stop.is_set()),
                "uptime_s": time.monotonic() - self._started_mono,
                "address": self.config.resolved_address(),
                "queue_depth": counts["queued"],
                "states": counts,
                "quota": self.config.quota,
                "tenants": dict(sorted(self.table.usage_s.items())),
                "fairness": self.scheduler.fairness(self.table.usage_s),
                "wal_seq": self.wal.seq,
                "wal_quarantined": len(self.wal.quarantined),
                "audit_seq": self.audit.seq,
                "engine": stats.to_dict(),
                "cache_hit_rate": stats.hits / lookups if lookups else 0.0,
                "watchdog_kills": self.registry.counter(
                    "serve.watchdog_kills"
                ).value,
            }
