"""Durable job queue: an append-only JSONL write-ahead log.

Every externally visible job transition the daemon makes — submission,
state changes, results — is appended to ``wal.jsonl`` *before* it is
acknowledged to any client, so the queue survives ``kill -9``: on
startup :func:`replay` folds the log back into the job table and any
job that was ``queued`` or ``running`` at the crash is requeued exactly
once (attempt counts preserved), while terminal jobs keep serving their
recorded results.

Record format (one canonical-JSON object per line)::

    {"schema": "repro-serve-wal/1", "seq": 17, "type": "submit",
     "job": {...}}
    {"schema": "repro-serve-wal/1", "seq": 18, "type": "state",
     "job_id": "j000004", "state": "running", "attempts": 1, ...}

``seq`` is strictly increasing across the whole file; ``submit``
carries the full job record, ``state`` a delta (new state, attempt
count, optional ``error`` / ``result`` / ``not_before``).

Crash consistency
-----------------
Appends are a single ``write`` of one line followed by ``flush`` +
``fsync`` (fsync elidable via ``durable=False`` for benchmarks).  A
crash can therefore only tear the *final* line; :func:`replay`
tolerates exactly that — a trailing partial line is dropped — while
garbage anywhere earlier raises :class:`WALError` (that is real
corruption, not a crash artefact, and silently skipping it would
resurrect or lose jobs).
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable

from repro.analysis.perf import canonical_json

__all__ = ["WAL_SCHEMA", "JobWAL", "WALError", "fold", "replay"]

WAL_SCHEMA = "repro-serve-wal/1"


class WALError(RuntimeError):
    """The WAL is corrupt in a way crash-recovery must not paper over."""


def replay(path: str) -> list[dict[str, Any]]:
    """Read every complete record of the WAL at ``path``.

    A missing file is an empty log.  A torn final line (crashed
    appender) is ignored; any other malformed line raises
    :class:`WALError`.  Records of a future schema version also raise —
    downgrading a daemon across a WAL format change is not supported.
    """
    records: list[dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().split("\n")
    except FileNotFoundError:
        return records
    # A well-formed file ends with "\n", so split() yields a trailing
    # empty string.  Anything else in the last slot is a torn append
    # (crash mid-write): it is dropped — the transition was never
    # acknowledged, so dropping it is the safe direction.  Lines in the
    # body were all newline-terminated, so a malformed one there is
    # genuine corruption.
    body = lines[:-1]
    for lineno, line in enumerate(body, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise WALError(
                f"{path}:{lineno}: malformed WAL record: {exc}"
            ) from exc
        if record.get("schema") != WAL_SCHEMA:
            raise WALError(
                f"{path}:{lineno}: unexpected WAL schema "
                f"{record.get('schema')!r} (want {WAL_SCHEMA!r})"
            )
        records.append(record)
    seqs = [r["seq"] for r in records]
    if seqs != sorted(set(seqs)):
        raise WALError(f"{path}: WAL seq numbers not strictly increasing")
    return records


class JobWAL:
    """Appender over the WAL file; owns the ``seq`` counter.

    Not thread-safe by itself — the daemon serialises appends under its
    state lock, which also makes (seq assignment, write) atomic.
    """

    def __init__(self, path: str, *, durable: bool = True) -> None:
        self.path = path
        self.durable = durable
        existing = replay(path)
        self.seq = existing[-1]["seq"] if existing else 0
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        self._fh = open(path, "a", encoding="utf-8")

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def append(self, type_: str, **fields: Any) -> int:
        """Durably append one record; returns its ``seq``."""
        self.seq += 1
        record = {"schema": WAL_SCHEMA, "seq": self.seq, "type": type_}
        record.update(fields)
        self._fh.write(canonical_json(record) + "\n")
        self._fh.flush()
        if self.durable:
            os.fsync(self._fh.fileno())
        return self.seq

    # Convenience wrappers keeping record shapes in one place ----------
    def submit(self, job: dict[str, Any]) -> int:
        return self.append("submit", job=job)

    def state(self, job_id: str, state: str, **fields: Any) -> int:
        return self.append("state", job_id=job_id, state=state, **fields)


def fold(records: Iterable[dict[str, Any]]) -> dict[str, dict[str, Any]]:
    """Fold WAL records into ``{job_id: job_record}``.

    ``submit`` creates the job; each ``state`` record overlays the new
    state plus any delta fields it carries.  Unknown job ids in state
    records raise :class:`WALError` (a submit record must come first —
    the daemon writes them in that order).
    """
    jobs: dict[str, dict[str, Any]] = {}
    for record in records:
        if record["type"] == "submit":
            job = dict(record["job"])
            jobs[job["job_id"]] = job
        elif record["type"] == "state":
            job_id = record["job_id"]
            if job_id not in jobs:
                raise WALError(
                    f"state record for unknown job {job_id!r} "
                    f"(seq {record['seq']})"
                )
            job = jobs[job_id]
            job["state"] = record["state"]
            for field in ("attempts", "error", "result", "not_before"):
                if field in record:
                    job[field] = record[field]
        else:
            raise WALError(f"unknown WAL record type {record['type']!r}")
    return jobs
