"""Durable job queue: an append-only JSONL write-ahead log.

Every externally visible job transition the daemon makes — submission,
state changes, results — is appended to ``wal.jsonl`` *before* it is
acknowledged to any client, so the queue survives ``kill -9``: on
startup :func:`replay` folds the log back into the job table and any
job that was ``queued`` or ``running`` at the crash is requeued exactly
once (attempt counts preserved), while terminal jobs keep serving their
recorded results.

Record format (one canonical-JSON object per line)::

    {"crc": 3094873502, "schema": "repro-serve-wal/2", "seq": 17,
     "type": "submit", "job": {...}}
    {"crc": 193475381, "schema": "repro-serve-wal/2", "seq": 18,
     "type": "state", "job_id": "j000004", "state": "running", ...}

``seq`` is strictly increasing across the whole file; ``submit``
carries the full job record, ``state`` a delta (new state, attempt
count, optional ``error`` / ``result`` / ``not_before``).  ``crc`` is
:func:`record_crc` over the record *without* its crc field — the
at-rest integrity stamp of schema v2.

Crash consistency and corruption
--------------------------------
Appends are a single ``write`` of one line followed by ``flush`` +
``fsync`` (fsync elidable via ``durable=False`` for benchmarks).  A
crash can therefore only tear the *final* line; :class:`JobWAL`
truncates such a torn tail when it reopens the file (the transition was
never acknowledged, so dropping it is the safe direction) and replays
tolerate one if they see it first.

Anything else that fails to verify — unparsable JSON, a record whose
CRC does not match its bytes, a record without a CRC — is *silent
corruption* (bit rot, a stray writer, disk damage).  Schema v1 raised
:class:`WALError` for any of it; v2 instead **quarantines** the damaged
line: it is skipped, reported through ``replay``'s ``quarantine``
parameter, and counted by the daemon (``serve.wal_quarantined``), so
one rotten record no longer takes the whole queue down while never
being silently accepted either.  :class:`WALError` remains the loud
failure for problems quarantine must not paper over: a record of a
*different WAL schema version* that is provably intact (its CRC
verifies, or it is a v1 record — v1 never carried CRCs), and ``seq``
regressions among verified records.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any, Iterable

from repro.analysis.perf import canonical_json

__all__ = [
    "WAL_SCHEMA",
    "JobWAL",
    "WALError",
    "fold",
    "record_crc",
    "replay",
]

WAL_SCHEMA = "repro-serve-wal/2"

#: Schema versions that are recognised as *ours* even though they fail
#: v2 verification (they predate the CRC stamp).  Meeting one raises
#: :class:`WALError` — a version mismatch, not corruption.
_LEGACY_SCHEMAS = frozenset({"repro-serve-wal/1"})


class WALError(RuntimeError):
    """The WAL is corrupt in a way crash-recovery must not paper over."""


def record_crc(record: dict[str, Any]) -> int:
    """CRC32 of a record's canonical JSON form, ``crc`` field excluded."""
    content = {k: v for k, v in record.items() if k != "crc"}
    return zlib.crc32(canonical_json(content).encode("utf-8"))


def replay(
    path: str, *, quarantine: list[dict[str, Any]] | None = None
) -> list[dict[str, Any]]:
    """Read every verified record of the WAL at ``path``.

    A missing file is an empty log; a torn final line (crashed
    appender) is ignored.  Damaged lines are skipped and, when
    ``quarantine`` is given, described into it as ``{"lineno", "line",
    "reason"}`` entries — the caller decides whether to surface counts
    or refuse service.  Intact records of a *different* schema version
    raise :class:`WALError` (running a daemon across a WAL format
    change is an operator error, not corruption), as do ``seq``
    regressions among the verified records.
    """
    records: list[dict[str, Any]] = []
    try:
        # errors="replace": bit rot can produce invalid UTF-8, and a
        # strict decode would crash the whole replay on one bad byte.
        # The replacement character breaks that line's JSON parse (and
        # its CRC), routing it to quarantine like any other damage.
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            lines = fh.read().split("\n")
    except FileNotFoundError:
        return records
    # A well-formed file ends with "\n", so split() yields a trailing
    # empty string.  Anything else in the last slot is a torn append
    # (crash mid-write): it is dropped — the transition was never
    # acknowledged, so dropping it is the safe direction.
    body = lines[:-1]
    for lineno, line in enumerate(body, start=1):
        if not line.strip():
            continue
        reason = None
        try:
            record = json.loads(line)
        except ValueError as exc:
            record, reason = None, f"malformed JSON: {exc}"
        if record is not None and not isinstance(record, dict):
            record, reason = None, "record is not an object"
        if record is not None:
            schema = record.get("schema")
            if record.get("crc") == record_crc(record):
                # Bit-exact as some appender wrote it: a schema mismatch
                # here is a version problem, never line damage.
                if schema != WAL_SCHEMA:
                    raise WALError(
                        f"{path}:{lineno}: unsupported WAL schema "
                        f"{schema!r} (want {WAL_SCHEMA!r})"
                    )
                records.append(record)
                continue
            if schema in _LEGACY_SCHEMAS:
                raise WALError(
                    f"{path}:{lineno}: WAL written by schema {schema!r}; "
                    f"this build reads {WAL_SCHEMA!r} — migrate or remove "
                    "the old log"
                )
            reason = (
                "CRC mismatch" if "crc" in record else "missing CRC stamp"
            )
        if quarantine is not None:
            quarantine.append(
                {"lineno": lineno, "line": line, "reason": reason}
            )
    seqs = [r["seq"] for r in records]
    if seqs != sorted(set(seqs)):
        raise WALError(f"{path}: WAL seq numbers not strictly increasing")
    return records


class JobWAL:
    """Appender over the WAL file; owns the ``seq`` counter.

    Not thread-safe by itself — the daemon serialises appends under its
    state lock, which also makes (seq assignment, write) atomic.

    Opening the file heals a torn tail (a final line without ``\\n``,
    left by a crashed appender) by truncating it: the bytes were never
    acknowledged and appending after them would weld the next record
    onto the fragment.  Damaged lines met during the opening replay are
    retained in :attr:`quarantined`.
    """

    def __init__(self, path: str, *, durable: bool = True) -> None:
        self.path = path
        self.durable = durable
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        self.tail_healed = self._heal_torn_tail(path)
        self.quarantined: list[dict[str, Any]] = []
        existing = replay(path, quarantine=self.quarantined)
        self.seq = existing[-1]["seq"] if existing else 0
        self._fh = open(path, "a", encoding="utf-8")

    @staticmethod
    def _heal_torn_tail(path: str) -> bool:
        try:
            with open(path, "rb+") as fh:
                data = fh.read()
                if data and not data.endswith(b"\n"):
                    fh.truncate(data.rfind(b"\n") + 1)
                    return True
        except FileNotFoundError:
            pass
        return False

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def append(self, type_: str, **fields: Any) -> int:
        """Durably append one CRC-stamped record; returns its ``seq``."""
        self.seq += 1
        record = {"schema": WAL_SCHEMA, "seq": self.seq, "type": type_}
        record.update(fields)
        record["crc"] = record_crc(record)
        self._fh.write(canonical_json(record) + "\n")
        self._fh.flush()
        if self.durable:
            os.fsync(self._fh.fileno())
        return self.seq

    # Convenience wrappers keeping record shapes in one place ----------
    def submit(self, job: dict[str, Any]) -> int:
        return self.append("submit", job=job)

    def state(self, job_id: str, state: str, **fields: Any) -> int:
        return self.append("state", job_id=job_id, state=state, **fields)


def fold(
    records: Iterable[dict[str, Any]],
    *,
    orphan_states: list[dict[str, Any]] | None = None,
) -> dict[str, dict[str, Any]]:
    """Fold WAL records into ``{job_id: job_record}``.

    ``submit`` creates the job; each ``state`` record overlays the new
    state plus any delta fields it carries.  A state record for an
    unknown job normally raises :class:`WALError` (the daemon always
    writes the submit first, so this is a logic bug) — but when the
    caller quarantined damaged lines the missing submit may simply be
    one of them: pass ``orphan_states`` to collect such records instead
    of raising (the job is unrecoverable either way; collecting keeps
    recovery of every *other* job alive).
    """
    jobs: dict[str, dict[str, Any]] = {}
    for record in records:
        if record["type"] == "submit":
            job = dict(record["job"])
            jobs[job["job_id"]] = job
        elif record["type"] == "state":
            job_id = record["job_id"]
            if job_id not in jobs:
                if orphan_states is not None:
                    orphan_states.append(record)
                    continue
                raise WALError(
                    f"state record for unknown job {job_id!r} "
                    f"(seq {record['seq']})"
                )
            job = jobs[job_id]
            job["state"] = record["state"]
            for field in ("attempts", "error", "result", "not_before"):
                if field in record:
                    job[field] = record[field]
        else:
            raise WALError(f"unknown WAL record type {record['type']!r}")
    return jobs
