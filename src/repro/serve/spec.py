"""Job specs: what a client may submit, and how the daemon runs it.

A spec is a small JSON object naming one of the repo's sweep workloads
plus its size knobs::

    {"kind": "figure5",    "mode": "tiny" | "quick" | "full"}
    {"kind": "resilience", "mode": "tiny" | "quick" | "full"}
    {"kind": "soak",       "schedules": 4, "seed": 0}
    {"kind": "sleep",      "seconds": 0.2, "tasks": 2}

``sleep`` is a synthetic load/health workload (deterministic payload,
real wall-clock cost) used by the stall-watchdog tests, the benchmark
and operators probing a live daemon.

Determinism is the serving contract: :func:`execute_spec` is the *same*
pure function whether it runs inside the daemon, in a bench client's
process, or offline during ``repro audit-replay`` — a served job's
``result["digest"]`` must equal the digest of a direct run of the same
spec, and the audit log records ``config_digest(spec) → result digest``
for every run so that equality stays checkable forever.

Admission gates (:func:`validate_spec`) are the guard layer's front
door: malformed or out-of-bounds specs are rejected *before* they touch
the queue, in the same spirit as `repro.guard`'s invariant checks —
fail loudly at the boundary instead of wedging a worker later.  The
soak kind additionally runs under the full
:class:`~repro.guard.InvariantMonitor` once executing.
"""

from __future__ import annotations

import time
from typing import Any, Mapping

from repro.analysis.perf import stable_digest

__all__ = [
    "AdmissionError",
    "KINDS",
    "config_digest",
    "execute_spec",
    "validate_spec",
]

KINDS = ("figure5", "resilience", "soak", "sleep")

_MODES = ("tiny", "quick", "full")

#: Admission bounds for the soak/sleep knobs: a multi-tenant daemon
#: must not accept one job that monopolises it for hours.
MAX_SOAK_SCHEDULES = 200
MAX_SLEEP_SECONDS = 60.0
MAX_SLEEP_TASKS = 64


class AdmissionError(ValueError):
    """A submitted spec failed an admission gate (never enqueued)."""


def validate_spec(spec: Mapping[str, Any]) -> dict[str, Any]:
    """Check ``spec`` against the admission gates; returns a clean copy.

    The returned dict contains exactly the recognised fields with
    defaults filled in, so two submissions meaning the same job always
    produce the same ``config_digest``.
    """
    if not isinstance(spec, Mapping):
        raise AdmissionError(f"spec must be an object, got {type(spec).__name__}")
    kind = spec.get("kind")
    if kind not in KINDS:
        raise AdmissionError(f"unknown job kind {kind!r}; choose from {KINDS}")
    if kind in ("figure5", "resilience"):
        mode = spec.get("mode", "tiny")
        if mode not in _MODES:
            raise AdmissionError(
                f"unknown {kind} mode {mode!r}; choose from {_MODES}"
            )
        return {"kind": kind, "mode": mode}
    if kind == "soak":
        schedules = spec.get("schedules", 4)
        seed = spec.get("seed", 0)
        if not isinstance(schedules, int) or not 1 <= schedules <= MAX_SOAK_SCHEDULES:
            raise AdmissionError(
                f"soak schedules must be an int in [1, {MAX_SOAK_SCHEDULES}], "
                f"got {schedules!r}"
            )
        if not isinstance(seed, int):
            raise AdmissionError(f"soak seed must be an int, got {seed!r}")
        return {"kind": "soak", "schedules": schedules, "seed": seed}
    # kind == "sleep"
    seconds = spec.get("seconds", 0.1)
    tasks = spec.get("tasks", 1)
    if not isinstance(seconds, (int, float)) or not 0.0 <= seconds <= MAX_SLEEP_SECONDS:
        raise AdmissionError(
            f"sleep seconds must be in [0, {MAX_SLEEP_SECONDS}], got {seconds!r}"
        )
    if not isinstance(tasks, int) or not 1 <= tasks <= MAX_SLEEP_TASKS:
        raise AdmissionError(
            f"sleep tasks must be an int in [1, {MAX_SLEEP_TASKS}], got {tasks!r}"
        )
    return {"kind": "sleep", "seconds": float(seconds), "tasks": tasks}


def config_digest(spec: Mapping[str, Any]) -> str:
    """Stable digest of a (validated) spec — the audit log's left side."""
    return stable_digest(validate_spec(spec))


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _sleep_task(seconds: float, index: int) -> dict[str, Any]:
    """Synthetic engine task: burns ``seconds`` of wall-clock."""
    time.sleep(seconds)
    return {"slept_s": seconds, "index": index}


def execute_spec(
    spec: Mapping[str, Any],
    *,
    engine=None,
    artifacts_dir: str | None = None,
) -> dict[str, Any]:
    """Run one job spec; returns its result payload.

    The payload always carries ``kind``, ``config_digest`` and
    ``digest`` (the result digest — a pure virtual-time fingerprint,
    byte-identical across daemon/offline/serial/pooled/cached
    execution).  ``engine`` optionally supplies a
    :class:`~repro.exec.SweepEngine` (the daemon passes its persistent
    one); ``artifacts_dir`` is where a failing soak may write its
    minimal reproducers.
    """
    spec = validate_spec(spec)
    kind = spec["kind"]
    base = {"kind": kind, "config_digest": stable_digest(spec)}

    if kind == "figure5":
        from repro.experiments import run_figure5
        from repro.workloads import Figure5Scenario

        scenario = {
            "tiny": Figure5Scenario.tiny,
            "quick": Figure5Scenario.quick,
            "full": Figure5Scenario,
        }[spec["mode"]]()
        result = run_figure5(scenario, engine=engine)
        return {
            **base,
            "digest": result.digest(),
            "mean_ratio": result.mean_ratio,
            "proc_counts": list(result.proc_counts),
        }

    if kind == "resilience":
        from repro.experiments import run_resilience
        from repro.workloads import ResilienceScenario

        scenario = {
            "tiny": ResilienceScenario.tiny,
            "quick": ResilienceScenario.quick,
            "full": ResilienceScenario,
        }[spec["mode"]]()
        result = run_resilience(scenario, engine=engine)
        return {
            **base,
            "digest": result.digest(),
            "n_rows": len(result.rows),
        }

    if kind == "soak":
        import tempfile

        from repro.guard.soak import run_soak

        out_dir = artifacts_dir if artifacts_dir is not None else tempfile.mkdtemp(
            prefix="repro-serve-soak-"
        )
        result = run_soak(
            n_schedules=spec["schedules"],
            seed=spec["seed"],
            out_dir=out_dir,
            shrink=False,
            engine=engine,
        )
        return {
            **base,
            "digest": result.digest(),
            "ok": result.ok,
            "n_rows": len(result.rows),
            "n_failures": len(result.failures),
        }

    # kind == "sleep"
    from repro.exec import SweepEngine, Task

    engine = engine if engine is not None else SweepEngine()
    tasks = [
        Task(
            fn=_sleep_task,
            args=(spec["seconds"], index),
            key=None,  # a load generator must actually run every time
            label=f"sleep/{index}",
        )
        for index in range(spec["tasks"])
    ]
    payloads = engine.map(tasks)
    return {
        **base,
        "digest": stable_digest({"spec": spec, "payloads": payloads}),
        "slept_s": spec["seconds"],
        "tasks": spec["tasks"],
    }
