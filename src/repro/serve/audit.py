"""Append-only audit log + the ``repro audit-replay`` verifier.

Every job the daemon finishes — done, failed or killed — appends one
record to ``audit.jsonl``::

    {"crc": 812530941, "schema": "repro-serve-audit/2", "seq": 9,
     "job_id": "j000009", "tenant": "alice", "spec": {...},
     "config_digest": "...", "result_digest": "..." | null,
     "state": "done"}

``crc`` is the same at-rest stamp the WAL uses
(:func:`repro.serve.wal.record_crc`): an audit line whose bytes rotted
no longer masquerades as a replayable claim.  Damaged lines are
*quarantined* on read — skipped and reported, never silently accepted
— while an intact record of a different audit schema version still
raises (that is an operator error, not corruption).

``config_digest`` is the :func:`~repro.serve.spec.config_digest` of the
validated spec; ``result_digest`` the served payload's ``digest``.
Because every workload is a pure function of its spec
(:func:`~repro.serve.spec.execute_spec`), the pair is a *replayable
claim*: anyone holding the audit log can re-run the spec offline and
byte-verify that the daemon served the deterministic answer — across
crashes, restarts, cache hits, pool sizes and machines.

:func:`audit_replay` does exactly that over a seeded random sample of
the log's ``done`` records (replaying a full production log would cost
as much as serving it did).  It is pure offline code: no daemon, no
socket — just the log file and the simulator.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.perf import canonical_json
from repro.serve.spec import execute_spec
from repro.serve.wal import JobWAL, record_crc

__all__ = ["AUDIT_SCHEMA", "AuditLog", "AuditReplayReport", "audit_replay", "read_audit"]

AUDIT_SCHEMA = "repro-serve-audit/2"

#: Recognised-but-unreadable predecessors (no CRC stamp): meeting one
#: raises instead of quarantining — a version mismatch, not bit rot.
_LEGACY_SCHEMAS = frozenset({"repro-serve-audit/1"})


class AuditLog:
    """Appender over the audit JSONL file (same torn-tail healing and
    quarantine semantics as the WAL: only verified lines are ever read
    back, damaged ones are skipped and retained in :attr:`quarantined`)."""

    def __init__(self, path: str, *, durable: bool = True) -> None:
        self.path = path
        self.durable = durable
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        self.tail_healed = JobWAL._heal_torn_tail(path)
        self.quarantined: list[dict[str, Any]] = []
        records = read_audit(path, quarantine=self.quarantined)
        self.seq = records[-1]["seq"] if records else 0
        self._fh = open(path, "a", encoding="utf-8")

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def append(
        self,
        *,
        job_id: str,
        tenant: str,
        spec: dict[str, Any],
        config_digest: str,
        result_digest: str | None,
        state: str,
    ) -> None:
        self.seq += 1
        record = {
            "schema": AUDIT_SCHEMA,
            "seq": self.seq,
            "job_id": job_id,
            "tenant": tenant,
            "spec": spec,
            "config_digest": config_digest,
            "result_digest": result_digest,
            "state": state,
        }
        record["crc"] = record_crc(record)
        self._fh.write(canonical_json(record) + "\n")
        self._fh.flush()
        if self.durable:
            os.fsync(self._fh.fileno())


def read_audit(
    path: str, *, quarantine: list[dict[str, Any]] | None = None
) -> list[dict[str, Any]]:
    """All verified audit records at ``path`` (missing file = empty).

    Lines that fail verification — unparsable JSON, missing or wrong
    CRC — are skipped and, when ``quarantine`` is given, described into
    it as ``{"lineno", "line", "reason"}`` entries.  An *intact* record
    (CRC verifies) of a foreign schema, or any record of a known legacy
    audit schema, still raises :class:`ValueError`.
    """
    records: list[dict[str, Any]] = []
    try:
        # errors="replace": invalid UTF-8 from bit rot must quarantine
        # the affected line, not crash the replay (see wal.replay).
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            lines = fh.read().split("\n")
    except FileNotFoundError:
        return records
    for lineno, line in enumerate(lines[:-1], start=1):
        # the last slot is "" or a torn append
        if not line.strip():
            continue
        reason = None
        try:
            record = json.loads(line)
        except ValueError as exc:
            record, reason = None, f"malformed JSON: {exc}"
        if record is not None and not isinstance(record, dict):
            record, reason = None, "record is not an object"
        if record is not None:
            schema = record.get("schema")
            if record.get("crc") == record_crc(record):
                if schema != AUDIT_SCHEMA:
                    raise ValueError(
                        f"{path}:{lineno}: unexpected audit schema "
                        f"{schema!r} (want {AUDIT_SCHEMA!r})"
                    )
                records.append(record)
                continue
            if schema in _LEGACY_SCHEMAS:
                raise ValueError(
                    f"{path}:{lineno}: audit log written by schema "
                    f"{schema!r}; this build reads {AUDIT_SCHEMA!r}"
                )
            reason = (
                "CRC mismatch" if "crc" in record else "missing CRC stamp"
            )
        if quarantine is not None:
            quarantine.append(
                {"lineno": lineno, "line": line, "reason": reason}
            )
    return records


@dataclass
class AuditReplayReport:
    """Outcome of re-running a sampled audit window offline."""

    path: str
    n_records: int
    n_done: int
    sample: int
    seed: int
    n_quarantined: int = 0
    rows: list[dict[str, Any]] = field(default_factory=list)

    @property
    def mismatches(self) -> list[dict[str, Any]]:
        return [row for row in self.rows if not row["ok"]]

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def report(self) -> str:
        lines = [
            f"audit-replay: {self.path}",
            f"  {self.n_records} record(s), {self.n_done} done; replayed "
            f"{len(self.rows)} sampled (seed {self.seed})",
        ]
        if self.n_quarantined:
            lines.append(
                f"  {self.n_quarantined} corrupted line(s) quarantined"
            )
        for row in self.rows:
            status = "ok" if row["ok"] else "MISMATCH"
            lines.append(
                f"  {row['job_id']}  {row['spec']['kind']:<10} "
                f"{row['config_digest'][:12]} -> "
                f"{(row['replayed_digest'] or '?')[:12]}  {status}"
            )
        lines.append(
            f"  {len(self.mismatches)} mismatch(es) in {len(self.rows)} "
            f"replayed record(s)"
        )
        return "\n".join(lines)


def audit_replay(
    path: str, *, sample: int = 5, seed: int = 0
) -> AuditReplayReport:
    """Replay a seeded sample of the audit log's ``done`` records.

    Each sampled record's spec is re-executed offline (serial engine,
    no cache — the replay must not be able to hit the very cache that
    produced the audited run) and its fresh result digest compared to
    the recorded one.
    """
    quarantine: list[dict[str, Any]] = []
    records = read_audit(path, quarantine=quarantine)
    done = [r for r in records if r["state"] == "done" and r["result_digest"]]
    picked = done
    if sample < len(done):
        rng = random.Random(seed)
        picked = [done[i] for i in sorted(rng.sample(range(len(done)), sample))]
    out = AuditReplayReport(
        path=path,
        n_records=len(records),
        n_done=len(done),
        sample=sample,
        seed=seed,
        n_quarantined=len(quarantine),
    )
    for record in picked:
        payload = execute_spec(record["spec"])
        out.rows.append(
            {
                "job_id": record["job_id"],
                "spec": record["spec"],
                "config_digest": record["config_digest"],
                "recorded_digest": record["result_digest"],
                "replayed_digest": payload["digest"],
                "ok": payload["digest"] == record["result_digest"]
                and payload["config_digest"] == record["config_digest"],
            }
        )
    return out
