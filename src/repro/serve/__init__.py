"""repro.serve — persistent job-queue service over the sweep engine.

Turns the one-shot sweep CLI into a long-lived daemon (``repro
serve``): a durable job queue (append-only JSONL WAL with
crash-recovery replay), priority + fair-share scheduling across a
persistent :class:`~repro.exec.SweepEngine` worker pool, per-tenant
quotas, streaming result delivery over a unix-socket JSON-lines
protocol (``repro submit`` / ``jobs`` / ``result --follow``), and an
append-only audit log of ``config digest → result digest`` that makes
every served workload byte-replayable offline (``repro audit-replay``).
The guard layer's role here is health: admission gates, a stall
watchdog with kill + requeue-with-backoff, and a ``/healthz``-style
status verb.  See ``docs/serving.md``.
"""

from repro.serve.audit import (
    AUDIT_SCHEMA,
    AuditLog,
    AuditReplayReport,
    audit_replay,
    read_audit,
)
from repro.serve.daemon import ServeConfig, ServeDaemon
from repro.serve.jobs import Job, JobTable, QuotaError, STATES, TERMINAL_STATES
from repro.serve.protocol import PROTOCOL_SCHEMA, ServeClient, ServeError
from repro.serve.scheduler import FairShareScheduler
from repro.serve.spec import (
    AdmissionError,
    KINDS,
    config_digest,
    execute_spec,
    validate_spec,
)
from repro.serve.wal import WAL_SCHEMA, JobWAL, WALError, fold, record_crc, replay

__all__ = [
    "AUDIT_SCHEMA",
    "AdmissionError",
    "AuditLog",
    "AuditReplayReport",
    "FairShareScheduler",
    "Job",
    "JobTable",
    "JobWAL",
    "KINDS",
    "PROTOCOL_SCHEMA",
    "QuotaError",
    "STATES",
    "ServeClient",
    "ServeConfig",
    "ServeDaemon",
    "ServeError",
    "TERMINAL_STATES",
    "WALError",
    "WAL_SCHEMA",
    "audit_replay",
    "config_digest",
    "execute_spec",
    "fold",
    "read_audit",
    "record_crc",
    "replay",
    "validate_spec",
]
