"""Argument-validation helpers used across the public API.

These raise early, with messages that name the offending parameter, so
configuration mistakes surface at construction time rather than deep
inside a simulation run.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_probability",
    "check_type",
    "check_disjoint_intervals",
]


def check_positive(name: str, value: float) -> float:
    """Validate ``value > 0`` and return it."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Validate ``value >= 0`` and return it."""
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(
    name: str,
    value: float,
    lo: float,
    hi: float,
    *,
    inclusive: bool = True,
) -> float:
    """Validate ``lo <= value <= hi`` (or strict bounds) and return it."""
    ok = (lo <= value <= hi) if inclusive else (lo < value < hi)
    if not ok:
        bracket = "[]" if inclusive else "()"
        raise ValueError(
            f"{name} must be in {bracket[0]}{lo}, {hi}{bracket[1]}, got {value!r}"
        )
    return value


def check_probability(name: str, value: float) -> float:
    """Validate ``0 <= value <= 1`` and return it."""
    return check_in_range(name, value, 0.0, 1.0)


def check_type(name: str, value: Any, expected: type | tuple[type, ...]) -> Any:
    """Validate ``isinstance(value, expected)`` and return the value."""
    if not isinstance(value, expected):
        names = (
            expected.__name__
            if isinstance(expected, type)
            else " | ".join(t.__name__ for t in expected)
        )
        raise TypeError(f"{name} must be {names}, got {type(value).__name__}")
    return value


def check_disjoint_intervals(
    name: str, intervals: list[tuple[float, float]]
) -> list[tuple[float, float]]:
    """Validate that closed intervals ``(lo, hi)`` are pairwise disjoint.

    Touching endpoints count as an overlap: two schedule events at the
    same instant have no defined relative order, so a window that ends
    exactly where the next begins is ambiguous.  Returns the intervals
    sorted by start time.
    """
    ordered = sorted(intervals)
    for (lo_a, hi_a), (lo_b, hi_b) in zip(ordered, ordered[1:]):
        if lo_b <= hi_a:
            raise ValueError(
                f"{name} intervals overlap: "
                f"[{lo_a:g}, {hi_a:g}] and [{lo_b:g}, {hi_b:g}]"
            )
    return ordered
