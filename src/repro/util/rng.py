"""Deterministic random-number management.

Every stochastic element of a simulation (external-load traces, link
fluctuation, scenario generation) draws from its own
:class:`numpy.random.Generator` derived from a single root seed through
named, order-independent spawning.  Two runs with the same root seed and
the same component names therefore see identical random streams even if
the components are constructed in a different order — a prerequisite for
the reproducibility guarantees documented in DESIGN.md §7.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngTree", "spawn_generator"]


def _name_to_key(name: str) -> int:
    """Hash a component name to a stable 64-bit integer key."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def spawn_generator(root_seed: int, name: str) -> np.random.Generator:
    """Return a generator keyed by ``(root_seed, name)``.

    The same pair always yields an identical stream; distinct names yield
    statistically independent streams (via :class:`numpy.random.SeedSequence`
    entropy pooling).
    """
    seq = np.random.SeedSequence(entropy=root_seed, spawn_key=(_name_to_key(name),))
    return np.random.Generator(np.random.PCG64(seq))


class RngTree:
    """A tree of named random generators hanging off one root seed.

    Examples
    --------
    >>> tree = RngTree(1234)
    >>> a = tree.generator("host/3/load")
    >>> b = tree.generator("link/0-1/latency")
    >>> a2 = RngTree(1234).generator("host/3/load")
    >>> bool((a.random(4) == a2.random(4)).all())
    True
    """

    def __init__(self, root_seed: int) -> None:
        if not isinstance(root_seed, (int, np.integer)):
            raise TypeError(f"root_seed must be an int, got {type(root_seed).__name__}")
        self._root_seed = int(root_seed)
        self._issued: dict[str, np.random.Generator] = {}

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def generator(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``.

        Repeated calls with the same name return the *same object*, so a
        component that keeps drawing from its generator advances a single
        stream.
        """
        if name not in self._issued:
            self._issued[name] = spawn_generator(self._root_seed, name)
        return self._issued[name]

    def child(self, name: str) -> "RngTree":
        """Return an independent subtree keyed by ``name``."""
        return RngTree(_name_to_key(f"{self._root_seed}:{name}") % (2**63))
