"""Small shared utilities: seeded RNG trees and argument validation."""

from repro.util.rng import RngTree, spawn_generator
from repro.util.validation import (
    check_positive,
    check_non_negative,
    check_in_range,
    check_probability,
    check_type,
)

__all__ = [
    "RngTree",
    "spawn_generator",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_probability",
    "check_type",
]
