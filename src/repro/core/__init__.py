"""The paper's contribution: AIAC solvers coupled with decentralized
dynamic load balancing.

Public entry points:

* :func:`~repro.core.solver.run_aiac` — Algorithm 1, the unbalanced
  asynchronous-iterations / asynchronous-communications solver;
* :func:`~repro.core.lb.run_balanced_aiac` — Algorithms 4–7, the
  residual-driven, non-centralized load-balanced AIAC solver;
* :class:`~repro.core.config.SolverConfig` /
  :class:`~repro.core.config.LBConfig` — run configuration;
* :class:`~repro.core.records.RunResult` — everything a run produces.

The synchronous execution models (SISC, SIAC) built on the same
machinery live in :mod:`repro.models`.
"""

from repro.core.config import LBConfig, SolverConfig
from repro.core.convergence import SupervisorMonitor, TokenRingDetector
from repro.core.estimators import (
    ComponentCountEstimator,
    IterationTimeEstimator,
    LoadEstimator,
    ResidualEstimator,
    make_estimator,
)
from repro.core.partition import PartitionRegistry
from repro.core.records import RunResult
from repro.core.solver import run_aiac
from repro.core.lb import run_balanced_aiac

__all__ = [
    "SolverConfig",
    "LBConfig",
    "SupervisorMonitor",
    "TokenRingDetector",
    "LoadEstimator",
    "ResidualEstimator",
    "IterationTimeEstimator",
    "ComponentCountEstimator",
    "make_estimator",
    "PartitionRegistry",
    "RunResult",
    "run_aiac",
    "run_balanced_aiac",
]
