"""The load-balanced AIAC solver (paper Algorithms 4–7).

Each rank periodically (every ``LBConfig.period`` sweeps — the
``OkToTryLB`` counter) tests whether to ship components to a neighbour:
left first, then right (the paper's trial order, which also prevents a
node from balancing with both neighbours at once).  The decision is the
Bertsekas–Tsitsiklis *lightest-loaded-neighbour* rule with the load
measured by the configured estimator (the paper's residual by default):
ship when ``my_estimate / neighbour_estimate > threshold_ratio``, and
never shrink below ``min_components`` (the famine guard).

Migration protocol
------------------
The paper sends migration data directly.  On a chain this admits a rare
but fatal race: if two adjacent ranks simultaneously decide to ship
components to *each other* (possible with stale estimates), the blocks
interleave and the contiguous partition is destroyed.  We therefore make
migrations a three-step handshake, each step a normal asynchronous
message:

1. **offer** — tiny message announcing the intent and amount;
2. **reply** — the receiver accepts unless it is already involved in a
   conflicting migration on that edge; crossing offers are broken
   deterministically (the lower rank's offer wins);
3. **data** — the components (plus the receiver's fresh halo and the
   shipped global positions), sent only after an accept; the sender
   splits its state at this moment, so the amount is re-validated
   against the famine guard and the transfer is cancelled (a zero-count
   data message) if it no longer fits.

The handshake costs one extra round-trip of latency per migration —
negligible against the data transfer — and makes the partition
invariants of :class:`repro.core.partition.PartitionRegistry` hold
under any asynchronous schedule (property-tested).

Boundary messages carry global positions; receive handlers drop stale
halo data exactly as the unbalanced solver does (Algorithm 7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.core.config import LBConfig, SolverConfig
from repro.core.estimators import make_estimator
from repro.core.records import RunResult
from repro.core.solver import ChainRun, RankContext, build_chain
from repro.des import Wait
from repro.grid.platform import Platform
from repro.problems.base import Problem
from repro.runtime.message import Message
from repro.runtime.tracer import FaultRecord, MigrationRecord

__all__ = ["run_balanced_aiac", "LBRankState"]


@dataclass(slots=True)
class LBRankState:
    """Per-rank load-balancing protocol state."""

    #: Sweeps remaining until the next trial (``OkToTryLB``).
    ok_to_try: int
    #: Current trial period (adapted per rank when ``LBConfig.adaptive``).
    current_period: int = 0
    #: Outstanding outgoing offer per side: None or the offered count.
    outgoing: dict[str, int | None] = field(
        default_factory=lambda: {"left": None, "right": None}
    )
    #: We accepted an offer from this side and await its data.
    incoming_expected: dict[str, bool] = field(
        default_factory=lambda: {"left": False, "right": False}
    )
    offers_sent: int = 0
    offers_rejected: int = 0
    migrations_out: int = 0
    #: Consecutive genuinely-fruitless trials (adaptive mode backs off
    #: only after several in a row, tolerating estimator noise).
    fruitless_streak: int = 0
    #: Monotonic per-side counters matching protocol timeouts to the
    #: offer/accept they guard (fault injection only): a timer whose
    #: epoch no longer matches is stale and must not fire.
    offer_epoch: dict[str, int] = field(
        default_factory=lambda: {"left": 0, "right": 0}
    )
    incoming_epoch: dict[str, int] = field(
        default_factory=lambda: {"left": 0, "right": 0}
    )
    #: Offers abandoned because no reply survived the fault schedule.
    offers_timed_out: int = 0
    #: Migration payloads re-absorbed after their transfer failed.
    reabsorbed: int = 0


def _opposite(side: str) -> str:
    return "right" if side == "left" else "left"


def _adapt_period(state: LBRankState, cfg: LBConfig, *, productive: bool) -> None:
    """MIMD adaptation of the trial period (the paper's future work).

    Halve after a productive event (a migration went out — imbalance is
    present, look again soon); double after a fruitless one (nothing to
    ship, or the neighbour refused).
    """
    if not cfg.adaptive:
        return
    if productive:
        state.current_period = max(cfg.period_min, state.current_period // 2)
    else:
        state.current_period = min(cfg.period_max, state.current_period * 2)


class _BalancedRun:
    """Glue object wiring LB handlers and the balanced main loop."""

    def __init__(self, run: ChainRun, lb_config: LBConfig) -> None:
        self.run = run
        run.lb_runtime = self  # guard introspection (stall suspects)
        self.cfg = lb_config
        self.lb: list[LBRankState] = [
            LBRankState(
                ok_to_try=lb_config.period, current_period=lb_config.period
            )
            for _ in run.ranks
        ]
        run.rank_busy = self._rank_busy
        for ctx in run.ranks:
            ctx.estimator = make_estimator(lb_config.estimator)
            for side in ("left", "right"):
                ctx.node.register_handler(
                    f"lb_offer_from_{side}",
                    lambda msg, c=ctx, s=side: self._on_offer(c, s, msg),
                )
                ctx.node.register_handler(
                    f"lb_reply_from_{side}",
                    lambda msg, c=ctx, s=side: self._on_reply(c, s, msg),
                )
                ctx.node.register_handler(
                    f"lb_data_from_{side}",
                    lambda msg, c=ctx, s=side: self._on_data(c, s, msg),
                )
                # Failure hooks for the resilient transport (inert on
                # the lossless fast path): a protocol message of ours
                # toward `side` carries the kind named after the side
                # the *receiver* sees it from, i.e. the opposite one.
                out_side = _opposite(side)
                ctx.node.register_failure_handler(
                    f"lb_offer_from_{side}",
                    lambda msg, delivered, c=ctx, s=out_side: (
                        self._on_offer_failed(c, s, msg, delivered)
                    ),
                )
                ctx.node.register_failure_handler(
                    f"lb_reply_from_{side}",
                    lambda msg, delivered, c=ctx, s=out_side: (
                        self._on_reply_failed(c, s, msg, delivered)
                    ),
                )
                ctx.node.register_failure_handler(
                    f"lb_data_from_{side}",
                    lambda msg, delivered, c=ctx, s=out_side: (
                        self._on_data_failed(c, s, msg, delivered)
                    ),
                )

    def _rank_busy(self, rank: int) -> bool:
        """Unfinished migration protocol at ``rank``?

        Used by convergence detection: a rank with an outstanding offer
        or an accepted-but-not-received migration cannot vouch for its
        residual (components may be about to arrive or leave).
        """
        state = self.lb[rank]
        return any(v is not None for v in state.outgoing.values()) or any(
            state.incoming_expected.values()
        )

    # ------------------------------------------------------------------
    # Initiation (Algorithm 5, TryLeftLB / TryRightLB)
    # ------------------------------------------------------------------
    def try_lb(self, ctx: RankContext, side: str) -> str:
        """Attempt a migration toward ``side``.

        Returns the outcome: ``"offered"`` when an offer went out;
        transient obstacles (``"edge"``, ``"pending"``, ``"busy"``,
        ``"no_info"``); or genuinely-nothing-to-do outcomes
        (``"converged"``, ``"balanced"``, ``"famine"``) — the adaptive
        frequency controller backs off only on the latter group.
        """
        run, cfg = self.run, self.cfg
        state = self.lb[ctx.rank]
        neighbor = run.neighbor(ctx.rank, side)
        if neighbor is None:
            return "edge"
        if not ctx.node.peer_alive(neighbor.rank):
            # The neighbour looks dead (nothing heard within the liveness
            # timeout): never shed load toward it — the components would
            # strand in a failed transfer.  Transient: retried next sweep.
            return "dead_peer"
        if state.outgoing[side] is not None or state.incoming_expected[side]:
            return "pending"
        data_kind = f"lb_data_from_{_opposite(side)}"
        if ctx.node.channel_busy(data_kind, neighbor.rank):
            return "busy"  # previous migration data still in flight
        mine = ctx.estimator.value()
        theirs = ctx.neighbor_estimate[side]
        if not math.isfinite(mine):
            return "no_info"  # no sweep completed yet
        if mine <= 0.0 or ctx.residual < run.config.tolerance:
            # This rank is locally converged: its components are no load
            # at all, and ratios between two converged ranks are pure
            # noise (1e-14 / 1e-16 = 100).  Migrating here only churns
            # the network and resets convergence streaks.
            return "converged"
        if not math.isfinite(theirs):
            return "no_info"  # neighbour never reported
        ratio = mine / theirs if theirs > 0.0 else math.inf
        if ratio <= cfg.threshold_ratio:
            return "balanced"
        surplus_fraction = 1.0 - 1.0 / ratio if math.isfinite(ratio) else 1.0
        nb = int(cfg.accuracy * ctx.n_local * surplus_fraction)
        nb = min(
            nb,
            int(cfg.max_fraction * ctx.n_local),
            ctx.n_local - cfg.min_components,
        )
        if nb < 1:
            return "famine"  # famine guard (ThresholdData)
        offer_kind = f"lb_offer_from_{_opposite(side)}"
        ctx.node.send(
            neighbor.node,
            offer_kind,
            {"n": nb},
            run.config.header_bytes,
        )
        state.outgoing[side] = nb
        state.offers_sent += 1
        if run.injector is not None:
            # Guard the handshake against permanently lost replies: an
            # offer still unanswered after the protocol timeout is
            # abandoned (the epoch check ignores stale timers).
            state.offer_epoch[side] += 1
            run.sim.at(
                run.sim.now + run.injector.resilience.protocol_timeout,
                self._expire_offer,
                ctx,
                side,
                state.offer_epoch[side],
            )
        return "offered"

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    def _on_offer(self, ctx: RankContext, side: str, msg: Message) -> None:
        """An adjacent rank offers components arriving on our ``side``."""
        state = self.lb[ctx.rank]
        neighbor = self.run.neighbor(ctx.rank, side)
        assert neighbor is not None
        accept = True
        if ctx.node.stop_requested or state.incoming_expected[side]:
            accept = False
        elif ctx.node.channel_busy(f"lb_data_from_{_opposite(side)}", neighbor.rank):
            # Defensive: our own migration data toward that neighbour is
            # still in flight (cannot occur under FIFO channels, but the
            # invariant is cheap to enforce).
            accept = False
        elif state.outgoing[side] is not None:
            # Crossing offers on this edge: the lower rank's offer wins.
            if ctx.rank < neighbor.rank:
                accept = False
            # Higher rank: accept the incoming one; our own outstanding
            # offer will be rejected by the (lower-ranked) neighbour.
        if accept:
            state.incoming_expected[side] = True
            if self.run.injector is not None:
                # If the promised data never makes it (sender crashed for
                # good, or the transfer failed and was re-absorbed), the
                # expectation must not pin this rank "busy" forever.
                state.incoming_epoch[side] += 1
                self.run.sim.at(
                    self.run.sim.now
                    + self.run.injector.resilience.protocol_timeout,
                    self._expire_incoming,
                    ctx,
                    side,
                    state.incoming_epoch[side],
                )
        reply_kind = f"lb_reply_from_{_opposite(side)}"
        ctx.node.send(
            neighbor.node,
            reply_kind,
            {"accept": accept},
            self.run.config.header_bytes,
        )

    def _on_reply(self, ctx: RankContext, side: str, msg: Message) -> None:
        """Our offer toward ``side`` was answered."""
        run, cfg = self.run, self.cfg
        state = self.lb[ctx.rank]
        offered = state.outgoing[side]
        if offered is None:
            return  # defensive: reply without an outstanding offer
        state.outgoing[side] = None
        neighbor = run.neighbor(ctx.rank, side)
        assert neighbor is not None
        data_kind = f"lb_data_from_{_opposite(side)}"
        if not msg.payload["accept"]:
            state.offers_rejected += 1
            _adapt_period(state, cfg, productive=False)
            state.ok_to_try = (
                state.current_period if cfg.adaptive else cfg.retry_delay
            )
            return
        # Re-validate the amount against the current block (it may have
        # shrunk since the offer); cancel with a zero-count message so
        # the receiver clears its expectation.
        nb = min(offered, ctx.n_local - cfg.min_components)
        if nb < 1:
            ctx.node.send(
                neighbor.node, data_kind, {"n": 0}, run.config.header_bytes
            )
            return
        payload = run.problem.split(ctx.state, nb, side)
        lo, hi = run.partition.record_send(ctx.rank, nb, side)
        # The halo the shipped edge had before the split: carried along
        # so a failed transfer can be re-absorbed losslessly.
        if side == "left":
            prev_halo = ctx.halo_left
            ctx.lo = hi
            ctx.halo_left = run.problem.payload_edge_halo(payload, "last")
        else:
            prev_halo = ctx.halo_right
            ctx.hi = lo
            ctx.halo_right = run.problem.payload_edge_halo(payload, "first")
        receiver_halo = run.problem.halo_out(ctx.state, side)
        nbytes = (
            nb * run.problem.component_nbytes()
            + run.problem.halo_nbytes()
            + run.config.header_bytes
        )
        sent = ctx.node.send(
            neighbor.node,
            data_kind,
            {
                "n": nb,
                "lo": lo,
                "hi": hi,
                "components": payload,
                "halo": receiver_halo,
                "prev_halo": prev_halo,
            },
            nbytes,
            exclusive=True,
        )
        assert sent, "data channel was checked idle before offering"
        if ctx.checkpoint is not None:
            # Migration moved the block edge: refresh the checkpoint so a
            # later crash-restore never rolls back the partition bounds.
            run.checkpoint(ctx)
        state.migrations_out += 1
        _adapt_period(state, cfg, productive=True)
        state.ok_to_try = state.current_period  # Algorithm 5: OkToTryLB = 20
        run.monitor.reset_rank(ctx.rank)
        run.monitor.reset_rank(neighbor.rank)
        if run.detector is not None:
            run.detector.reset_rank(ctx.rank)
            run.detector.reset_rank(neighbor.rank)
        run.tracer.migration(
            MigrationRecord(
                src_rank=ctx.rank,
                dst_rank=neighbor.rank,
                n_components=nb,
                time=run.sim.now,
                src_residual=ctx.estimator.value(),
                dst_residual=ctx.neighbor_estimate[side],
            )
        )

    def _on_data(self, ctx: RankContext, side: str, msg: Message) -> None:
        """Migrated components arrived from ``side``; merge them."""
        run = self.run
        state = self.lb[ctx.rank]
        payload = msg.payload
        if payload["n"] == 0:
            state.incoming_expected[side] = False
            return
        lo, hi = payload["lo"], payload["hi"]
        # The handshake guarantees adjacency; a violation is a bug.
        if side == "right" and lo != ctx.hi:
            raise RuntimeError(
                f"rank {ctx.rank}: migration [{lo},{hi}) from the right is "
                f"not adjacent to block [{ctx.lo},{ctx.hi})"
            )
        if side == "left" and hi != ctx.lo:
            raise RuntimeError(
                f"rank {ctx.rank}: migration [{lo},{hi}) from the left is "
                f"not adjacent to block [{ctx.lo},{ctx.hi})"
            )
        merge_side = "right" if side == "right" else "left"
        run.problem.merge(ctx.state, payload["components"], merge_side)
        if side == "right":
            ctx.hi = hi
            ctx.halo_right = payload["halo"]
        else:
            ctx.lo = lo
            ctx.halo_left = payload["halo"]
        run.partition.record_receive(ctx.rank, lo, hi)
        state.incoming_expected[side] = False
        if ctx.checkpoint is not None:
            run.checkpoint(ctx)
        run.monitor.reset_rank(ctx.rank)
        if run.detector is not None:
            run.detector.reset_rank(ctx.rank)
        if self.cfg.adaptive:
            # Imbalance just arrived here (it travels as a front of
            # migrations): react at full frequency — this rank may need
            # to pass components onward immediately.
            state.current_period = self.cfg.period_min
            state.ok_to_try = 0
            state.fruitless_streak = 0

    # ------------------------------------------------------------------
    # Fault recovery (resilient transport only)
    # ------------------------------------------------------------------
    def _expire_offer(self, ctx: RankContext, side: str, epoch: int) -> None:
        """Protocol timeout: abandon an offer no reply ever resolved."""
        state = self.lb[ctx.rank]
        if state.offer_epoch[side] != epoch or state.outgoing[side] is None:
            return
        state.outgoing[side] = None
        state.offers_timed_out += 1
        _adapt_period(state, self.cfg, productive=False)
        state.ok_to_try = (
            state.current_period if self.cfg.adaptive else self.cfg.retry_delay
        )

    def _expire_incoming(self, ctx: RankContext, side: str, epoch: int) -> None:
        """Protocol timeout: stop expecting data that never arrived."""
        state = self.lb[ctx.rank]
        if state.incoming_epoch[side] != epoch:
            return
        state.incoming_expected[side] = False

    def _on_offer_failed(
        self, ctx: RankContext, side: str, msg: Message, delivered: bool
    ) -> None:
        """Our offer toward ``side`` exhausted its retransmissions."""
        state = self.lb[ctx.rank]
        if state.outgoing[side] is None:
            return
        state.outgoing[side] = None
        state.offers_timed_out += 1
        _adapt_period(state, self.cfg, productive=False)
        state.ok_to_try = (
            state.current_period if self.cfg.adaptive else self.cfg.retry_delay
        )

    def _on_reply_failed(
        self, ctx: RankContext, side: str, msg: Message, delivered: bool
    ) -> None:
        """Our reply toward ``side`` (answering its offer) never made it.

        If we had accepted and the offerer provably never learned it
        (``delivered`` False), it will not ship data: drop the
        expectation now instead of waiting for the protocol timeout.
        """
        if delivered or not msg.payload["accept"]:
            return
        self.lb[ctx.rank].incoming_expected[side] = False

    def _on_data_failed(
        self, ctx: RankContext, side: str, msg: Message, delivered: bool
    ) -> None:
        """Migration data toward ``side`` exhausted its retransmissions.

        ``delivered`` True means the receiver processed the payload and
        only the acknowledgements were lost — the components live there
        now and touching them would double-place them.  Otherwise the
        payload is orphaned: merge it back into our own block (the edge
        stayed frozen while the transfer was unresolved, so it is still
        adjacent) and restore the pre-split halo.
        """
        payload = msg.payload
        if delivered or payload["n"] == 0:
            return
        run = self.run
        lo, hi = payload["lo"], payload["hi"]
        run.partition.record_reabsorb(ctx.rank, lo, hi)
        run.problem.merge(ctx.state, payload["components"], side)
        if side == "left":
            ctx.lo = lo
            ctx.halo_left = payload["prev_halo"]
        else:
            ctx.hi = hi
            ctx.halo_right = payload["prev_halo"]
        state = self.lb[ctx.rank]
        state.reabsorbed += 1
        if ctx.checkpoint is not None:
            run.checkpoint(ctx)
        run.monitor.reset_rank(ctx.rank)
        if run.detector is not None:
            run.detector.reset_rank(ctx.rank)
        run.tracer.fault(
            FaultRecord(
                kind="reabsorb",
                time=run.sim.now,
                t_end=run.sim.now,
                rank=ctx.rank,
                detail=f"{payload['n']} components [{lo}, {hi})",
            )
        )


def _balanced_process(balanced: _BalancedRun, ctx: RankContext):
    """The main loop of Algorithm 4."""
    run = balanced.run
    state = balanced.lb[ctx.rank]
    exclusive = run.config.exclusive_sends
    node = ctx.node
    while not node.stop_requested:
        # -- crash recovery (no-op on the lossless fast path) --
        if not node.alive:
            yield Wait(node.restart_signal)
            continue
        if node.crash_count != ctx.restored_epoch:
            run.restore_checkpoint(ctx)
            continue
        # -- load-balancing trial (left first, then right: Algorithm 4) --
        if state.ok_to_try <= 0:
            left = balanced.try_lb(ctx, "left")
            right = left if left == "offered" else balanced.try_lb(ctx, "right")
            # Fixed-period mode (the paper): the counter is reset only
            # when a migration is actually performed (Algorithm 5);
            # otherwise the node retries at the next iteration.
            # Adaptive mode: back off only when *both* sides are
            # genuinely balanced/converged/famine-blocked — transient
            # obstacles (in-flight data, missing info) retry next sweep.
            fruitless = {"balanced", "converged", "famine", "edge"}
            if balanced.cfg.adaptive:
                if left == "offered" or right == "offered":
                    # Imbalance detected: look again soon.
                    _adapt_period(state, balanced.cfg, productive=True)
                    state.fruitless_streak = 0
                elif left in fruitless and right in fruitless:
                    state.fruitless_streak += 1
                    if state.fruitless_streak >= 3:
                        _adapt_period(state, balanced.cfg, productive=False)
                        state.ok_to_try = state.current_period
                        state.fruitless_streak = 0
        else:
            state.ok_to_try -= 1
        # -- one sweep with mid-sweep left send (Algorithm 1 core) --
        yield from run.sweep(ctx, send_left_mid_sweep=True, exclusive=exclusive)
        if node.stop_requested:
            break
        if not node.alive or node.crash_count != ctx.restored_epoch:
            continue  # the sweep was lost to a crash
        run.send_halo(
            ctx, "right", estimate=ctx.estimator.value(), exclusive=exclusive
        )


def run_balanced_aiac(
    problem: Problem,
    platform: Platform,
    config: SolverConfig | None = None,
    lb_config: LBConfig | None = None,
    *,
    host_order: list[int] | None = None,
    injector: Any = None,
    profiler: Any = None,
    guard: Any = None,
) -> RunResult:
    """Solve with AIAC coupled to decentralized dynamic load balancing.

    This is the paper's contribution: the solver of
    :func:`repro.core.solver.run_aiac` plus the residual-driven,
    neighbour-local migration protocol of Algorithms 4–7.  ``injector``
    optionally arms a :class:`~repro.faults.injector.FaultInjector`
    against the run (installed after the LB estimators are wired, so the
    seeded checkpoints snapshot the configured estimator); ``profiler``
    optionally attaches a :class:`~repro.obs.profile.SimProfiler` to the
    DES kernel; ``guard`` a :class:`~repro.guard.InvariantMonitor`.
    """
    run = build_chain(
        problem, platform, config, model="aiac+lb", host_order=host_order
    )
    balanced = _BalancedRun(run, lb_config if lb_config is not None else LBConfig())
    if injector is not None:
        injector.install(run)
    if profiler is not None:
        run.sim.attach_profiler(profiler)
    if guard is not None:
        guard.attach(run)
    for ctx in run.ranks:
        run.sim.spawn(f"lb-rank-{ctx.rank}", _balanced_process(balanced, ctx))
    run.run()
    result = run.result()
    result.meta["offers_sent"] = sum(s.offers_sent for s in balanced.lb)
    result.meta["offers_rejected"] = sum(s.offers_rejected for s in balanced.lb)
    result.meta["offers_timed_out"] = sum(s.offers_timed_out for s in balanced.lb)
    result.meta["reabsorbed"] = sum(s.reabsorbed for s in balanced.lb)
    result.meta["final_sizes"] = run.partition.sizes()
    # Per-rank protocol counters + final load-estimator values, for the
    # metrics sidecar (repro.obs) and post-hoc imbalance analysis.
    result.meta["lb_rank_stats"] = [
        {
            "rank": ctx.rank,
            "offers_sent": s.offers_sent,
            "offers_rejected": s.offers_rejected,
            "offers_timed_out": s.offers_timed_out,
            "migrations_out": s.migrations_out,
            "reabsorbed": s.reabsorbed,
            "final_estimate": ctx.estimator.value(),
        }
        for ctx, s in zip(run.ranks, balanced.lb)
    ]
    return result
