"""Run results: everything a solver run produces, in one record."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.runtime.tracer import Tracer

__all__ = ["RunResult"]


@dataclass(slots=True)
class RunResult:
    """Outcome of one parallel solve on the simulated platform.

    Attributes
    ----------
    model:
        Execution model name (``"sisc"``, ``"siac"``, ``"aiac"``,
        ``"aiac+lb"``).
    converged:
        Whether global convergence was detected before the budget ran
        out.
    time:
        Virtual time at convergence (or at abort).
    iterations:
        Per-rank sweep counts.
    work:
        Per-rank total work units performed.
    solution_blocks:
        Per-rank local solution arrays in rank (= global) order;
        concatenate along axis 0 for the global solution.
    final_partition:
        Per-rank ``(lo, hi)`` blocks at the end of the run.
    residuals_at_stop:
        Last reported local residual of every rank.
    tracer:
        The execution trace (iteration spans, messages, migrations, …).
    n_migrations, components_migrated:
        Load-balancing activity totals.
    meta:
        Free-form extras (scenario name, seed, config echoes).
    """

    model: str
    converged: bool
    time: float
    iterations: list[int]
    work: list[float]
    solution_blocks: list[np.ndarray]
    final_partition: list[tuple[int, int]]
    residuals_at_stop: list[float]
    tracer: Tracer
    n_migrations: int = 0
    components_migrated: int = 0
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def n_ranks(self) -> int:
        return len(self.iterations)

    @property
    def total_work(self) -> float:
        return float(sum(self.work))

    @property
    def total_iterations(self) -> int:
        return int(sum(self.iterations))

    def solution(self) -> np.ndarray:
        """The assembled global solution (components in global order)."""
        return np.concatenate(self.solution_blocks, axis=0)

    def max_error_vs(self, reference: np.ndarray) -> float:
        """Infinity-norm distance of the assembled solution to ``reference``."""
        sol = self.solution()
        if sol.shape != reference.shape:
            raise ValueError(
                f"solution shape {sol.shape} != reference shape {reference.shape}"
            )
        return float(np.max(np.abs(sol - reference)))

    def summary(self) -> str:
        """One-line human-readable digest."""
        status = "converged" if self.converged else "NOT CONVERGED"
        return (
            f"{self.model}: {status} at t={self.time:.2f}s, "
            f"{self.total_iterations} sweeps over {self.n_ranks} ranks, "
            f"work={self.total_work:.0f}, migrations={self.n_migrations}"
        )

    def to_dict(self, *, include_solution: bool = False) -> dict[str, Any]:
        """JSON-serialisable summary of the run.

        Detailed traces are reduced to counts; set ``include_solution``
        to embed the solution blocks (as nested lists — large).
        """
        data: dict[str, Any] = {
            "model": self.model,
            "converged": self.converged,
            "time": self.time,
            "iterations": list(self.iterations),
            "work": list(self.work),
            "final_partition": [list(block) for block in self.final_partition],
            "residuals_at_stop": list(self.residuals_at_stop),
            "n_migrations": self.n_migrations,
            "components_migrated": self.components_migrated,
            # Always-on tracer aggregate: correct even for untraced runs
            # (the messages list is empty when tracing is disabled).
            "n_messages": self.tracer.n_messages(),
            "meta": {
                k: v
                for k, v in self.meta.items()
                if isinstance(v, (str, int, float, bool, list, type(None)))
            },
        }
        if include_solution:
            data["solution_blocks"] = [
                block.tolist() for block in self.solution_blocks
            ]
        return data

    def save_json(self, path: str, *, include_solution: bool = False) -> None:
        """Write :meth:`to_dict` to ``path`` as JSON."""
        import json

        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(include_solution=include_solution), fh, indent=2)
