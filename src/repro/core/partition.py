"""Bookkeeping of who owns which components, including in-flight ones.

The global component index space ``[0, n_components)`` is partitioned in
contiguous, rank-ordered blocks over the chain.  A migration moves a
contiguous run of components from the edge of one block to the adjacent
edge of a neighbour's block; while the message is in flight the
components belong to neither node.  The registry tracks all three kinds
of ownership and checks the invariants that the load-balancing protocol
must preserve:

* **coverage** — owned blocks plus in-flight runs tile ``[0, n)`` exactly;
* **contiguity** — each rank's block is one interval;
* **order** — blocks appear in rank order along the chain.

Solvers update the registry at send and receive time; property-based
tests drive it with random migration sequences (DESIGN.md §7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.topology.graphs import Topology

__all__ = ["PartitionRegistry", "PartitionError"]


class PartitionError(RuntimeError):
    """An invariant of the partition was violated."""


@dataclass(slots=True, frozen=True)
class _InFlight:
    """A contiguous run of components travelling between two ranks."""

    lo: int
    hi: int
    src: int
    dst: int


class PartitionRegistry:
    """Tracks the contiguous block ``[lo, hi)`` of every rank.

    Parameters
    ----------
    n_components:
        Global number of components.
    n_ranks:
        Chain length.
    topology:
        Optional :class:`~repro.topology.graphs.Topology` supplying the
        migration neighbourhood.  Contiguous 1-D blocks only admit
        migrations along a path, so the topology must satisfy
        :meth:`~repro.topology.graphs.Topology.is_path`; ``None`` keeps
        the implicit ``rank ± 1`` chain.
    """

    def __init__(
        self,
        n_components: int,
        n_ranks: int,
        *,
        topology: "Topology | None" = None,
    ) -> None:
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
        if topology is not None:
            if topology.n_nodes != n_ranks:
                raise ValueError(
                    f"topology has {topology.n_nodes} nodes for {n_ranks} ranks"
                )
            if not topology.is_path():
                raise ValueError(
                    "contiguous block partitions require a path topology; "
                    f"got {topology.spec.label()}"
                )
        self.topology = topology
        if n_components < n_ranks:
            raise ValueError(
                f"need at least one component per rank "
                f"({n_components} components, {n_ranks} ranks)"
            )
        self.n_components = n_components
        self.n_ranks = n_ranks
        base = n_components // n_ranks
        extra = n_components % n_ranks
        self._lo: list[int] = []
        self._hi: list[int] = []
        cursor = 0
        for r in range(n_ranks):
            size = base + (1 if r < extra else 0)
            self._lo.append(cursor)
            self._hi.append(cursor + size)
            cursor += size
        self._in_flight: list[_InFlight] = []
        self.check()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def block(self, rank: int) -> tuple[int, int]:
        """The ``[lo, hi)`` block currently owned by ``rank``."""
        return self._lo[rank], self._hi[rank]

    def n_local(self, rank: int) -> int:
        return self._hi[rank] - self._lo[rank]

    def sizes(self) -> list[int]:
        return [self.n_local(r) for r in range(self.n_ranks)]

    @property
    def n_in_flight(self) -> int:
        return sum(f.hi - f.lo for f in self._in_flight)

    def in_flight_runs(self) -> list[tuple[int, int, int, int]]:
        """``(lo, hi, src, dst)`` for every migration currently in flight.

        A read-only snapshot (used by :class:`repro.guard`'s
        conservation check to tile the global index space from an
        independent angle than :meth:`check`).
        """
        return [(f.lo, f.hi, f.src, f.dst) for f in self._in_flight]

    # ------------------------------------------------------------------
    # Migration lifecycle
    # ------------------------------------------------------------------
    def record_send(self, src: int, n: int, side: str) -> tuple[int, int]:
        """``src`` ships its ``n`` components nearest ``side``.

        Returns the global ``[lo, hi)`` range shipped.  ``side`` is from
        the sender's perspective: ``"left"`` ships to rank ``src - 1``.
        """
        if side not in ("left", "right"):
            raise ValueError(f"side must be 'left' or 'right', got {side!r}")
        if self.topology is not None:
            dst = self.topology.path_neighbor(src, side)
        else:
            dst = src - 1 if side == "left" else src + 1
            if not 0 <= dst < self.n_ranks:
                dst = None
        if dst is None:
            raise PartitionError(f"rank {src} has no {side} neighbour")
        if not 0 < n < self.n_local(src):
            raise PartitionError(
                f"rank {src} cannot ship {n} of its {self.n_local(src)} components"
            )
        if side == "left":
            lo = self._lo[src]
            hi = lo + n
            self._lo[src] = hi
        else:
            hi = self._hi[src]
            lo = hi - n
            self._hi[src] = lo
        self._in_flight.append(_InFlight(lo=lo, hi=hi, src=src, dst=dst))
        self.check()
        return lo, hi

    def record_reabsorb(self, src: int, lo: int, hi: int) -> None:
        """``src`` took back the in-flight run ``[lo, hi)`` it had shipped.

        Recovery path for fault injection: when migration data exhausts
        its retransmission attempts without ever reaching the receiver,
        the sender merges the orphaned components back into its own
        block (they are still adjacent to it — the edge is frozen while
        the transfer is unresolved).
        """
        for i, flight in enumerate(self._in_flight):
            if flight.lo == lo and flight.hi == hi and flight.src == src:
                del self._in_flight[i]
                break
        else:
            raise PartitionError(
                f"rank {src} re-absorbed [{lo}, {hi}) which is not in "
                f"flight from it"
            )
        if hi == self._lo[src]:
            self._lo[src] = lo
        elif lo == self._hi[src]:
            self._hi[src] = hi
        else:
            raise PartitionError(
                f"run [{lo}, {hi}) is not adjacent to rank {src}'s block "
                f"[{self._lo[src]}, {self._hi[src]})"
            )
        self.check()

    def record_receive(self, dst: int, lo: int, hi: int) -> None:
        """``dst`` merged the in-flight run ``[lo, hi)``."""
        for i, flight in enumerate(self._in_flight):
            if flight.lo == lo and flight.hi == hi and flight.dst == dst:
                del self._in_flight[i]
                break
        else:
            raise PartitionError(
                f"rank {dst} received [{lo}, {hi}) which is not in flight to it"
            )
        if hi == self._lo[dst]:
            self._lo[dst] = lo
        elif lo == self._hi[dst]:
            self._hi[dst] = hi
        else:
            raise PartitionError(
                f"run [{lo}, {hi}) is not adjacent to rank {dst}'s block "
                f"[{self._lo[dst]}, {self._hi[dst]})"
            )
        self.check()

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def check(self) -> None:
        """Raise :class:`PartitionError` if any invariant is broken."""
        intervals: list[tuple[int, int, str]] = []
        for r in range(self.n_ranks):
            lo, hi = self._lo[r], self._hi[r]
            if lo > hi:
                raise PartitionError(f"rank {r} has negative block [{lo}, {hi})")
            if lo < hi:
                intervals.append((lo, hi, f"rank {r}"))
        for f in self._in_flight:
            intervals.append((f.lo, f.hi, f"in-flight {f.src}->{f.dst}"))
        intervals.sort()
        cursor = 0
        for lo, hi, label in intervals:
            if lo != cursor:
                raise PartitionError(
                    f"coverage broken at {cursor}: next interval {label} "
                    f"starts at {lo}"
                )
            cursor = hi
        if cursor != self.n_components:
            raise PartitionError(
                f"coverage ends at {cursor}, expected {self.n_components}"
            )
        # Rank order: non-empty blocks must be ordered by rank.
        last_hi = 0
        for r in range(self.n_ranks):
            lo, hi = self._lo[r], self._hi[r]
            if lo < hi:
                if lo < last_hi:
                    raise PartitionError(
                        f"rank {r} block [{lo}, {hi}) overlaps or precedes "
                        f"an earlier rank's block"
                    )
                last_hi = hi
