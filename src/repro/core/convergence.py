"""Global convergence detection for asynchronous iterations.

The paper notes that AIAC algorithms need "the good criterion for
convergence detection and the good halting procedure" but does not
detail one.  We provide two:

* :class:`SupervisorMonitor` — an *oracle*: an observer outside the
  simulated platform that sees every rank's residual report in zero
  virtual time.  Used by all benchmarks so that detection overhead never
  pollutes the timing comparisons between algorithms (every variant pays
  exactly zero for detection).

* :class:`TokenRingDetector` — a *practical* decentralized two-phase
  token protocol on the chain, costing real messages and virtual time:
  rank 0 launches a query token once locally converged; the token
  travels right, each rank stamping whether it has been persistently
  converged since the previous phase; if the token returns clean twice
  in a row (the verification pass catches ranks reawakened by in-flight
  data), rank 0 broadcasts halt.  An ablation benchmark measures its
  overhead against the oracle.

Both declare convergence only after every rank reports ``persistence``
*consecutive* sweeps below tolerance, and any migration resets the
counters of the ranks involved (their residual is about to change).
"""

from __future__ import annotations

from typing import Callable

__all__ = ["SupervisorMonitor", "TokenRingDetector"]


class SupervisorMonitor:
    """Zero-cost convergence oracle.

    Parameters
    ----------
    n_ranks:
        Chain length.
    tolerance:
        Residual threshold.
    persistence:
        Consecutive below-tolerance sweeps required per rank.
    on_converged:
        Callback fired once, when global convergence is declared (the
        solver uses it to raise every node's stop flag and halt the
        simulation).
    hold_while:
        Optional predicate; while it returns True the monitor defers the
        declaration even when every streak is satisfied.  The balanced
        solver passes "components are in flight" — stopping mid-flight
        would lose the migrating components' state.
    """

    def __init__(
        self,
        n_ranks: int,
        tolerance: float,
        persistence: int,
        on_converged: Callable[[], None],
        hold_while: Callable[[], bool] | None = None,
    ) -> None:
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
        self.n_ranks = n_ranks
        self.tolerance = tolerance
        self.persistence = persistence
        self._on_converged = on_converged
        self._hold_while = hold_while
        self._streak = [0] * n_ranks
        # O(1) convergence test: count ranks whose streak is at/above
        # the persistence threshold instead of scanning every streak on
        # every report (the scan made detection O(ranks^2) per round at
        # large scale).  Transitions are tracked at threshold crossings,
        # so the count always equals the scan's result.
        self._n_satisfied = sum(1 for s in self._streak if s >= persistence)
        self.converged = False
        self.convergence_time: float | None = None

    def report(self, rank: int, residual: float, now: float) -> None:
        """A rank finished a sweep with the given local residual."""
        if self.converged:
            return
        if residual < self.tolerance:
            s = self._streak[rank] + 1
            self._streak[rank] = s
            if s == self.persistence:
                self._n_satisfied += 1
        else:
            s = self._streak[rank]
            self._streak[rank] = 0
            if s >= self.persistence > 0:
                self._n_satisfied -= 1
        if self._n_satisfied == self.n_ranks:
            if self._hold_while is not None and self._hold_while():
                return  # e.g. a migration is in flight: check again later
            self.converged = True
            self.convergence_time = now
            self._on_converged()

    def reset_rank(self, rank: int) -> None:
        """A migration touched ``rank``: its residual is about to change."""
        if not self.converged:
            s = self._streak[rank]
            self._streak[rank] = 0
            if s >= self.persistence > 0:
                self._n_satisfied -= 1


class TokenRingDetector:
    """Decentralized two-phase token detection (practical protocol).

    The detector is *driven by the solver*: each rank owns one
    ``RankState`` updated on every sweep; rank 0 decides when to launch
    tokens, and the solver carries token payloads in ordinary runtime
    messages (kind ``"detect_token"``), paying latency and bandwidth
    like any other message.

    Protocol
    --------
    1. Every rank tracks a *local streak* of consecutive below-tolerance
       sweeps, reset by residual regressions and by migrations.
    2. When rank 0's streak reaches ``persistence`` it launches a token
       ``(phase, epoch)`` rightward.  A rank forwards the token only
       while its own streak is at the threshold; otherwise it *drops*
       the token (cancellation) — rank 0 retries after its next sweep.
    3. A token completing the full ring (reaching the last rank) ends
       phase 1; the last rank sends it back as a *verification* token.
       If it comes home with every streak still intact, rank 0 declares
       convergence and a halt wave propagates rightward.
    4. A rank that drops a token (it is not persistently converged, or a
       migration just reset it) sends a *cancel* token back to rank 0 so
       the round is closed and can be relaunched — without it, one
       dropped token would leave rank 0 waiting forever.

    The two passes are necessary: after the first pass a rank may be
    reawakened by data that was in flight during the pass; FIFO channels
    guarantee such data arrives before the verification token does.
    """

    QUERY = "query"
    VERIFY = "verify"
    HALT = "halt"
    CANCEL = "cancel"

    def __init__(self, n_ranks: int, tolerance: float, persistence: int) -> None:
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
        self.n_ranks = n_ranks
        self.tolerance = tolerance
        self.persistence = persistence
        self._streak = [0] * n_ranks
        #: epoch counter: stale tokens from cancelled rounds are ignored.
        self.epoch = 0
        self._round_active = False
        self.converged = False
        self.messages_used = 0

    # -- per-sweep updates ------------------------------------------------
    def report(self, rank: int, residual: float) -> None:
        if residual < self.tolerance:
            self._streak[rank] += 1
        else:
            self._streak[rank] = 0
            if rank == 0:
                self._round_active = False  # cancel our own round

    def reset_rank(self, rank: int) -> None:
        self._streak[rank] = 0
        if rank == 0:
            self._round_active = False

    def locally_converged(self, rank: int) -> bool:
        return self._streak[rank] >= self.persistence

    # -- token logic -------------------------------------------------------
    def should_launch(self, rank: int) -> dict | None:
        """Called by rank 0 after each sweep; returns a token to send or None."""
        if rank != 0 or self.converged:
            return None
        if self._round_active or not self.locally_converged(0):
            return None
        if self.n_ranks == 1:
            # Degenerate chain: local persistence is global convergence.
            self.converged = True
            return None
        self.epoch += 1
        self._round_active = True
        self.messages_used += 1
        return {"phase": self.QUERY, "epoch": self.epoch}

    def on_token(self, rank: int, token: dict) -> tuple[dict | None, int]:
        """Handle an arriving token at ``rank``.

        Returns ``(token_to_send, direction)`` with direction +1 (right)
        or -1 (left); ``(None, 0)`` drops the token.
        """
        phase = token["phase"]
        epoch = token["epoch"]
        if phase == self.HALT:
            self.converged = True
            if rank + 1 < self.n_ranks:
                self.messages_used += 1
                return {"phase": self.HALT, "epoch": epoch}, +1
            return None, 0
        if phase == self.CANCEL:
            if rank == 0:
                if epoch == self.epoch:
                    self._round_active = False
                return None, 0
            self.messages_used += 1
            return token, -1  # keep travelling home
        if epoch != self.epoch and rank == 0:
            return None, 0  # stale round
        if not self.locally_converged(rank):
            # Cancel the round and tell rank 0, or it would wait forever
            # for a token that died here.
            if rank == 0:
                self._round_active = False
                return None, 0
            self.messages_used += 1
            return {"phase": self.CANCEL, "epoch": epoch}, -1
        if phase == self.QUERY:
            if rank == self.n_ranks - 1:
                self.messages_used += 1
                return {"phase": self.VERIFY, "epoch": epoch}, -1
            self.messages_used += 1
            return token, +1
        if phase == self.VERIFY:
            if rank == 0:
                # Round complete and everyone stayed converged: halt.
                self.converged = True
                self._round_active = False
                if self.n_ranks > 1:
                    self.messages_used += 1
                    return {"phase": self.HALT, "epoch": epoch}, +1
                return None, 0
            self.messages_used += 1
            return token, -1
        raise ValueError(f"unknown token phase {phase!r}")
