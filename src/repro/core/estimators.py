"""Load estimators: the scalar each node advertises to its neighbours.

Higher estimate = more loaded.  A node considers shipping components to
a neighbour when ``my_estimate / neighbour_estimate`` exceeds the
threshold ratio.

The paper (Section 5.2) argues for the **local residual**: "if a
processor has a low residual, all its components are not evolving so
far and its computations are not so useful for the overall progression"
— so it can take on more components.  The residual also captures
machine heterogeneity indirectly: a slow or externally-loaded machine
iterates less often in wall-clock time, so its residual lags behind its
neighbours'.

The alternatives the paper mentions and dismisses ("everyone could
think that taking the time to perform the k last iterations would give
a better criterion") are implemented for the ablation benchmarks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque

__all__ = [
    "LoadEstimator",
    "ResidualEstimator",
    "IterationTimeEstimator",
    "ComponentCountEstimator",
    "make_estimator",
]


class LoadEstimator(ABC):
    """Per-node load estimate, updated after every sweep."""

    @abstractmethod
    def update(
        self,
        residual: float,
        residual_l2: float,
        sweep_duration: float,
        n_local: int,
    ) -> None:
        """Record the outcome of one sweep.

        ``residual`` is the max-norm local residual (the convergence
        measure); ``residual_l2`` the Euclidean norm over the block's
        per-component residuals.
        """

    @abstractmethod
    def value(self) -> float:
        """Current estimate (higher = more loaded).  >= 0."""


class ResidualEstimator(LoadEstimator):
    """The paper's estimator: the local residual.

    ``norm="l2"`` (default) uses the Euclidean norm of the block's
    per-component residuals.  Unlike the max norm it is *mass*-aware: a
    block with sixty active components reports a larger load than one
    with two equally-stiff active components, so migration continues
    until the active mass — which is what drives per-sweep cost — is
    spread, not merely until every rank owns one active component.
    ``norm="max"`` gives the pure worst-component estimate (ablated).
    """

    def __init__(self, norm: str = "l2") -> None:
        if norm not in ("l2", "max"):
            raise ValueError(f"norm must be 'l2' or 'max', got {norm!r}")
        self.norm = norm
        self._value = float("inf")  # nothing computed yet: fully loaded

    def update(
        self,
        residual: float,
        residual_l2: float,
        sweep_duration: float,
        n_local: int,
    ) -> None:
        self._value = residual_l2 if self.norm == "l2" else residual

    def value(self) -> float:
        return self._value


class IterationTimeEstimator(LoadEstimator):
    """Mean wall-clock duration of the last ``window`` sweeps."""

    def __init__(self, window: int = 5) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._durations: deque[float] = deque(maxlen=window)

    def update(
        self,
        residual: float,
        residual_l2: float,
        sweep_duration: float,
        n_local: int,
    ) -> None:
        self._durations.append(sweep_duration)

    def value(self) -> float:
        if not self._durations:
            return float("inf")
        return sum(self._durations) / len(self._durations)


class ComponentCountEstimator(LoadEstimator):
    """The naive estimator: how many components a node holds."""

    def __init__(self) -> None:
        self._n = float("inf")

    def update(
        self,
        residual: float,
        residual_l2: float,
        sweep_duration: float,
        n_local: int,
    ) -> None:
        self._n = float(n_local)

    def value(self) -> float:
        return self._n


def make_estimator(kind: str) -> LoadEstimator:
    """Factory used by the solver; ``kind`` matches ``LBConfig.estimator``."""
    if kind == "residual":
        return ResidualEstimator(norm="l2")
    if kind == "residual_max":
        return ResidualEstimator(norm="max")
    if kind == "iteration_time":
        return IterationTimeEstimator()
    if kind == "component_count":
        return ComponentCountEstimator()
    raise ValueError(f"unknown estimator kind {kind!r}")
