"""Run configuration dataclasses.

Defaults follow the paper where it specifies values (``lb_period = 20``
is Algorithm 4's ``OkToTryLB`` reset; the trial order is left before
right) and sensible engineering choices where it does not
(``threshold_ratio``, the migration amount rule — see
:class:`LBConfig`).  Every unspecified-by-the-paper knob is swept by
``benchmarks/bench_ablations.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_in_range, check_positive

__all__ = ["SolverConfig", "LBConfig"]


@dataclass(slots=True)
class SolverConfig:
    """Configuration common to every execution model.

    Attributes
    ----------
    tolerance:
        Global convergence threshold on every rank's local residual.
    persistence:
        Number of *consecutive* sweeps each rank must report below
        tolerance before the monitor declares global convergence —
        guards against the classic asynchronous false-positive where a
        rank looks converged while fresher neighbour data is still in
        flight.
    max_iterations:
        Per-rank sweep budget; exceeding it aborts the run as
        non-converged.
    max_time:
        Virtual-time horizon (seconds); ``None`` = unbounded.
    overlap_split:
        Fraction of the sweep after which the *left* boundary data is
        sent (the paper's Algorithm 1 sends it once the two first
        components are updated, i.e. early in the sweep).  The right
        boundary always goes at the end of the sweep.
    exclusive_sends:
        Apply the paper's per-channel mutual exclusion (Figure 4
        variant).  ``False`` gives the general AIAC of Figure 3.
    trace:
        Record detailed iteration/idle/message spans (disable for large
        sweeps).
    header_bytes:
        Fixed per-message overhead added to every payload (positions,
        residual, protocol headers).
    min_sweep_duration:
        Floor on one sweep's virtual duration (a polling throttle).
        Relevant with work-skipping problems
        (``BrusselatorProblem(skip_converged=True)``): a rank whose
        whole block is skipped would otherwise spin thousands of
        near-free sweeps per virtual second — semantically harmless
        for AIAC but wasteful, exactly like a real busy-wait loop.
        0 (default) disables the throttle.
    detection:
        ``"oracle"`` — the zero-cost supervisor stops the run the moment
        global convergence holds (default; keeps timing comparisons
        clean).  ``"token_ring"`` — the practical decentralized protocol
        of :class:`repro.core.convergence.TokenRingDetector` runs over
        real messages; the oracle still *records* its detection time so
        the protocol's overhead is measurable (``bench_ablations``).
    """

    tolerance: float = 1e-6
    persistence: int = 3
    max_iterations: int = 100_000
    max_time: float | None = None
    overlap_split: float = 0.3
    exclusive_sends: bool = True
    trace: bool = True
    header_bytes: float = 64.0
    detection: str = "oracle"
    min_sweep_duration: float = 0.0

    def __post_init__(self) -> None:
        check_positive("tolerance", self.tolerance)
        if self.persistence < 1:
            raise ValueError(f"persistence must be >= 1, got {self.persistence}")
        check_positive("max_iterations", self.max_iterations)
        if self.max_time is not None:
            check_positive("max_time", self.max_time)
        check_in_range("overlap_split", self.overlap_split, 0.0, 1.0)
        if self.header_bytes < 0:
            raise ValueError(f"header_bytes must be >= 0, got {self.header_bytes}")
        if self.detection not in ("oracle", "token_ring"):
            raise ValueError(
                f"detection must be 'oracle' or 'token_ring', got {self.detection!r}"
            )
        if self.min_sweep_duration < 0:
            raise ValueError(
                f"min_sweep_duration must be >= 0, got {self.min_sweep_duration}"
            )


@dataclass(slots=True)
class LBConfig:
    """Load-balancing configuration (Algorithms 4–5).

    Attributes
    ----------
    period:
        ``OkToTryLB`` reset value: a node attempts load balancing every
        ``period`` sweeps (paper: 20).
    threshold_ratio:
        Minimum estimate ratio (mine / neighbour's) to trigger a
        migration (Algorithm 5's ``ThresholdRatio``).  Must be > 1.
    min_components:
        ``ThresholdData``: a node never lets its block shrink below this
        many components (the famine guard; at least 2 so a block always
        spans its own halo dependencies).
    accuracy:
        Migration granularity in ``(0, 1]``: the amount sent is
        ``floor(accuracy * n_local * (1 - 1/ratio))`` — 1.0 balances the
        estimates in one shot, smaller values perform the paper's
        "coarse load balancing with less data migration" recommended on
        slow networks.
    max_fraction:
        Hard cap on one migration's size as a fraction of the sender's
        block.  With the residual estimator the ratio saturates once a
        neighbour has converged (its residual is ~0), so the
        uncapped amount rule would dump almost an entire block in one
        shot and set off a cascade of re-migrations; capping turns the
        balancing into a stable diffusion-like process.  Swept by the
        ablation bench.
    estimator:
        ``"residual"`` (the paper's choice; L2 over the block's
        per-component residuals, so the estimate scales with how *much*
        of the block is still evolving), ``"residual_max"`` (worst
        component only), ``"iteration_time"`` or ``"component_count"``
        (ablations).
    retry_delay:
        Sweeps to wait before retrying after a rejected offer.
    adaptive:
        The paper's stated future work: "a closer study concerning the
        tuning of the load balancing frequency during the iterative
        process".  When enabled, each rank adapts its own trial period
        multiplicatively between ``period_min`` and ``period_max``:
        halve it after a performed migration (imbalance present — look
        again soon), double it after a fruitless trial or a rejected
        offer (nothing to do — stop paying for offers).  ``period`` is
        then only the starting value.
    period_min, period_max:
        Bounds of the adaptive period.
    """

    period: int = 20
    threshold_ratio: float = 2.0
    min_components: int = 4
    accuracy: float = 0.5
    max_fraction: float = 0.25
    estimator: str = "residual"
    retry_delay: int = 5
    adaptive: bool = False
    period_min: int = 2
    period_max: int = 80

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ValueError(f"period must be >= 1, got {self.period}")
        if not self.threshold_ratio > 1.0:
            raise ValueError(
                f"threshold_ratio must be > 1, got {self.threshold_ratio}"
            )
        if self.min_components < 2:
            raise ValueError(
                f"min_components must be >= 2, got {self.min_components}"
            )
        check_in_range("accuracy", self.accuracy, 1e-9, 1.0)
        check_in_range("max_fraction", self.max_fraction, 1e-9, 1.0)
        if self.estimator not in (
            "residual",
            "residual_max",
            "iteration_time",
            "component_count",
        ):
            raise ValueError(f"unknown estimator {self.estimator!r}")
        if self.retry_delay < 1:
            raise ValueError(f"retry_delay must be >= 1, got {self.retry_delay}")
        if self.period_min < 1:
            raise ValueError(f"period_min must be >= 1, got {self.period_min}")
        if self.period_max < self.period_min:
            raise ValueError(
                f"period_max must be >= period_min, got "
                f"{self.period_max} < {self.period_min}"
            )
