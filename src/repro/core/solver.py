"""Chain machinery and the unbalanced AIAC solver (paper Algorithm 1).

One *rank* per host, organised in a logical linear chain (the paper maps
the spatial components over linearly organised processors).  Each rank
runs a simulated process:

1. perform one relaxation sweep on its block (the numerics run for real;
   the counted work is converted to virtual time by the host);
2. part-way through the sweep, asynchronously send the updated *left*
   boundary component to the left neighbour (Algorithm 1 sends it "if
   j = StartC + 2", i.e. as soon as it is updated);
3. at the end of the sweep, send the *right* boundary component;
4. repeat until the convergence monitor raises the stop flag.

Boundary messages carry the component's **global position** and the
sender's residual/estimate (Algorithm 4); receive handlers drop data
whose position no longer matches the expected halo index — exactly the
paper's Algorithm 7 guard against messages crossing a repartition.

With ``config.exclusive_sends`` (default) a boundary send is suppressed
while the previous one on that channel is still in flight — the mutual
exclusion that "generates less communications" (Figure 4 variant).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Generator

import numpy as np

from repro.core.config import SolverConfig
from repro.core.convergence import SupervisorMonitor, TokenRingDetector
from repro.core.estimators import LoadEstimator, ResidualEstimator
from repro.core.partition import PartitionRegistry
from repro.core.records import RunResult
from repro.des import Hold, Signal, Simulator, Wait
from repro.grid.platform import Platform
from repro.problems.base import Problem
from repro.integrity import checkpoint_crc, corrupt_array_inplace
from repro.runtime.message import Message
from repro.runtime.node import GridNode
from repro.runtime.tracer import FaultRecord, IterationSpan, ResidualRecord, Tracer
from repro.topology.graphs import Topology

__all__ = ["ChainRun", "RankContext", "run_aiac", "build_chain"]


@dataclass(slots=True)
class RankContext:
    """Everything one rank of the chain knows and mutates.

    Shared (PM2-style) between the rank's main process and its receive
    handlers, which is safe because DES handlers are atomic.
    """

    rank: int
    node: GridNode
    state: Any
    lo: int
    hi: int
    halo_left: Any
    halo_right: Any
    #: Iteration number stamped on the freshest halo from each side
    #: (used by the synchronous models to wait for the right data).
    halo_iter_left: int = -1
    halo_iter_right: int = -1
    #: Fired whenever a halo arrives (synchronous models wait on it).
    halo_signal: Signal = field(default_factory=lambda: Signal("halo"))
    #: Freshest known neighbour load estimates (piggybacked).
    neighbor_estimate: dict[str, float] = field(
        default_factory=lambda: {"left": float("inf"), "right": float("inf")}
    )
    estimator: LoadEstimator = field(default_factory=ResidualEstimator)
    iteration: int = 0
    residual: float = float("inf")
    #: Residual of the previous sweep (piggybacked on mid-sweep sends,
    #: as in Algorithm 4's "residual of previous iteration").
    prev_residual: float = float("inf")
    #: Count of halo payloads dropped by the position guard.
    stale_halos_dropped: int = 0
    #: Last durable snapshot of the rank's block (fault injection only;
    #: None on the lossless fast path).
    checkpoint: Any = None
    #: The snapshot superseded by the latest one.  Kept so that a
    #: checkpoint whose CRC verification fails (poisoned at rest) can
    #: fall back to the last *verified* snapshot instead of
    #: resurrecting bad state.
    checkpoint_prev: Any = None
    #: ``node.crash_count`` value the current in-memory state descends
    #: from; a mismatch means a crash wiped the state and the last
    #: checkpoint must be restored.
    restored_epoch: int = 0

    @property
    def n_local(self) -> int:
        return self.hi - self.lo


class ChainRun:
    """A configured chain of ranks over a platform, ready to run."""

    def __init__(
        self,
        problem: Problem,
        platform: Platform,
        config: SolverConfig,
        *,
        model: str,
        host_order: list[int] | None = None,
        topology: Topology | None = None,
    ) -> None:
        self.problem = problem
        # Each run gets a private copy of the platform: network FIFO
        # state and lazily-generated load traces are mutable, and runs
        # compared against each other must see identical conditions (the
        # copy replays the same seeded traces from t = 0).
        self.platform = copy.deepcopy(platform)
        platform = self.platform
        # The deep copy inherits whatever FIFO clamps / traffic counters
        # the caller's platform accumulated; start this run from a clean
        # network regardless.
        platform.network.reset()
        self.config = config
        self.model = model
        n_ranks = len(platform.hosts)
        if host_order is None:
            host_order = list(range(n_ranks))
        if sorted(host_order) != list(range(n_ranks)):
            raise ValueError(
                f"host_order must be a permutation of 0..{n_ranks - 1}, "
                f"got {host_order!r}"
            )
        self.host_order = host_order
        # The migration neighbourhood.  The solver's contiguous 1-D
        # block decomposition only admits path topologies (enforced by
        # PartitionRegistry); arbitrary graphs are the balancing zoo's
        # domain (repro.balancing.zoo).
        self.topology = topology if topology is not None else Topology.chain(n_ranks)
        self.sim = Simulator()
        self.tracer = Tracer(enabled=config.trace)
        self.partition = PartitionRegistry(
            problem.n_components, n_ranks, topology=self.topology
        )
        #: Overridden by the load-balanced driver: True while ``rank``
        #: has unfinished migration-protocol state (offer out, accepted
        #: incoming, data in flight) — detection must not conclude then.
        self.rank_busy: Callable[[int], bool] = lambda rank: False
        in_flight = lambda: self.partition.n_in_flight > 0  # noqa: E731
        self.detector: TokenRingDetector | None = None
        if config.detection == "token_ring":
            # The oracle keeps *recording* (so the protocol's detection
            # overhead is measurable) but no longer stops the run.
            self.monitor = SupervisorMonitor(
                n_ranks,
                config.tolerance,
                config.persistence,
                lambda: None,
                hold_while=in_flight,
            )
            self.detector = TokenRingDetector(
                n_ranks, config.tolerance, config.persistence
            )
            self.detection_stop_time: float | None = None
        else:
            self.monitor = SupervisorMonitor(
                n_ranks,
                config.tolerance,
                config.persistence,
                self._on_converged,
                hold_while=in_flight,
            )
            self.detection_stop_time = None
        self.ranks: list[RankContext] = []
        self.aborted_reason: str | None = None
        #: Fault injector attached via :meth:`attach_injector`; None on
        #: the lossless fast path.
        self.injector: Any = None
        #: Invariant/watchdog monitor attached via
        #: :meth:`repro.guard.InvariantMonitor.attach`; None on the
        #: unguarded fast path (a single pointer test per sweep).
        self.guard: Any = None
        #: Load-balancing runtime (:class:`repro.core.lb._BalancedRun`)
        #: when this run is balanced; None otherwise.  Introspected by
        #: the guard's stall watchdog to name suspect channels.
        self.lb_runtime: Any = None
        #: Sweeps between periodic checkpoints (0 = checkpointing off).
        self.checkpoint_every = 0
        for rank in range(n_ranks):
            host = platform.hosts[host_order[rank]]
            node = GridNode(self.sim, rank, host, platform.network, self.tracer)
            lo, hi = self.partition.block(rank)
            ctx = RankContext(
                rank=rank,
                node=node,
                state=problem.initial_state(lo, hi),
                lo=lo,
                hi=hi,
                halo_left=problem.initial_halo(lo - 1),
                halo_right=problem.initial_halo(hi),
            )
            self.ranks.append(ctx)
        for ctx in self.ranks:
            self._register_halo_handlers(ctx)
            if self.detector is not None:
                ctx.node.register_handler(
                    "detect_token",
                    lambda msg, c=ctx: self._on_detect_token(c, msg),
                )

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    @property
    def n_ranks(self) -> int:
        return len(self.ranks)

    def neighbor(self, rank: int, side: str) -> RankContext | None:
        idx = self.topology.path_neighbor(rank, side)
        if idx is None:
            return None
        return self.ranks[idx]

    def _on_converged(self) -> None:
        for ctx in self.ranks:
            ctx.node.stop_requested = True
        self.sim.stop()

    def abort(self, reason: str) -> None:
        """Abort the run (budget exhausted, solver failure)."""
        if self.aborted_reason is None:
            self.aborted_reason = reason
        for ctx in self.ranks:
            ctx.node.stop_requested = True
        self.sim.stop()

    # ------------------------------------------------------------------
    # Fault injection: checkpoints and crash-restart recovery
    # ------------------------------------------------------------------
    def attach_injector(self, injector: Any) -> None:
        """Switch this run onto the resilient transport.

        Called by :meth:`repro.faults.injector.FaultInjector.install`:
        wires the injector into every node and seeds an initial
        checkpoint per rank so a crash at any time has a restore point.
        """
        if self.injector is not None:
            raise RuntimeError("an injector is already attached to this run")
        self.injector = injector
        self.checkpoint_every = injector.resilience.checkpoint_every
        for ctx in self.ranks:
            ctx.node.injector = injector
            self.checkpoint(ctx)

    def checkpoint(self, ctx: RankContext) -> None:
        """Snapshot everything a crashed rank needs to rejoin.

        Taken periodically (every ``checkpoint_every`` sweeps) and at
        *every* migration event, so the snapshot's block bounds always
        equal the live ones — a restore never rolls back the partition
        bookkeeping, only the numerical state.

        When the attached injector's detection layer is armed the
        snapshot is CRC-stamped (:func:`repro.integrity.checkpoint_crc`)
        and the superseded snapshot is retained as the fall-back restore
        point — rollback must land on *verified* state.
        """
        snapshot = {
            "iteration": ctx.iteration,
            "state": self.problem.copy_state(ctx.state),
            "lo": ctx.lo,
            "hi": ctx.hi,
            "halo_left": copy.deepcopy(ctx.halo_left),
            "halo_right": copy.deepcopy(ctx.halo_right),
            "halo_iter_left": ctx.halo_iter_left,
            "halo_iter_right": ctx.halo_iter_right,
            "estimator": copy.deepcopy(ctx.estimator),
        }
        if self.injector is not None and self.injector.detection_active:
            snapshot["crc"] = self._checkpoint_crc(snapshot)
            ctx.checkpoint_prev = ctx.checkpoint
        ctx.checkpoint = snapshot

    def _checkpoint_crc(self, snapshot: dict) -> int:
        """CRC of a snapshot, state values included via the problem view."""
        return checkpoint_crc(
            snapshot, self.problem.state_array(snapshot["state"])
        )

    def _verified_snapshot(self, ctx: RankContext) -> dict:
        """The freshest checkpoint that passes CRC verification.

        Unstamped snapshots (detection off, or taken by the divergence
        guard on an unfaulted run) are trusted as-is.  A stamped
        snapshot that fails its CRC was poisoned at rest: it is
        discarded — counted as a detected corruption — in favour of the
        retained previous verified snapshot.  With no verified snapshot
        left, the block is *re-initialized* from the problem's initial
        data: a fixed-point iteration converges from any start, so a
        cold block restart is sound recovery — corrupted state is never
        silently restored.
        """
        injector = self.injector
        snap = ctx.checkpoint
        if (
            injector is None
            or not injector.detection_active
            or snap is None
            or snap.get("crc") is None
            or self._checkpoint_crc(snap) == snap["crc"]
        ):
            return snap
        injector.stats["corruptions_detected"] += 1
        self.tracer.fault(
            FaultRecord(
                kind="corruption_detected",
                time=self.sim.now,
                t_end=self.sim.now,
                rank=ctx.rank,
                detail="checkpoint CRC mismatch",
            )
        )
        prev = ctx.checkpoint_prev
        if (
            prev is not None
            and (prev["lo"], prev["hi"]) == (snap["lo"], snap["hi"])
            and (
                prev.get("crc") is None
                or self._checkpoint_crc(prev) == prev["crc"]
            )
        ):
            ctx.checkpoint = prev
            ctx.checkpoint_prev = None
            injector.note_corruption_recovered(
                ctx.rank, "fell back to last verified checkpoint"
            )
            return prev
        fresh = dict(snap)
        fresh["iteration"] = 0
        fresh["state"] = self.problem.initial_state(snap["lo"], snap["hi"])
        fresh["halo_left"] = self.problem.initial_halo(snap["lo"] - 1)
        fresh["halo_right"] = self.problem.initial_halo(snap["hi"])
        fresh["halo_iter_left"] = -1
        fresh["halo_iter_right"] = -1
        fresh["crc"] = self._checkpoint_crc(
            {k: v for k, v in fresh.items() if k != "crc"}
        )
        ctx.checkpoint = fresh
        ctx.checkpoint_prev = None
        injector.note_corruption_recovered(
            ctx.rank, "re-initialized block from problem initial data"
        )
        return fresh

    def restore_checkpoint(self, ctx: RankContext) -> None:
        """Rejoin after a crash: reload the last *verified* checkpoint."""
        snap = ctx.checkpoint
        if snap is None:
            raise RuntimeError(
                f"rank {ctx.rank} crashed but has no checkpoint; "
                "was the injector attached via attach_injector()?"
            )
        snap = self._verified_snapshot(ctx)
        if (ctx.lo, ctx.hi) != (snap["lo"], snap["hi"]):
            # Checkpoints are refreshed at every migration, so the live
            # and snapshotted bounds can never diverge; a mismatch means
            # the recovery invariant broke.
            raise RuntimeError(
                f"rank {ctx.rank}: checkpoint block "
                f"[{snap['lo']}, {snap['hi']}) does not match live block "
                f"[{ctx.lo}, {ctx.hi})"
            )
        ctx.restored_epoch = ctx.node.crash_count
        ctx.iteration = snap["iteration"]
        ctx.state = self.problem.copy_state(snap["state"])
        ctx.halo_left = copy.deepcopy(snap["halo_left"])
        ctx.halo_right = copy.deepcopy(snap["halo_right"])
        ctx.halo_iter_left = snap["halo_iter_left"]
        ctx.halo_iter_right = snap["halo_iter_right"]
        ctx.estimator = copy.deepcopy(snap["estimator"])
        ctx.residual = float("inf")
        ctx.prev_residual = float("inf")
        # The rank is about to re-iterate from older state: its previous
        # convergence votes are void.
        self.monitor.reset_rank(ctx.rank)
        if self.detector is not None:
            self.detector.reset_rank(ctx.rank)

    def corrupt_block(self, fault: Any, rng: Any) -> str | None:
        """Apply a :class:`~repro.faults.models.StateCorruption` event.

        Called by the injector's compiled DES event.  ``target="state"``
        poisons the live block values in place (resident-memory upset);
        ``target="checkpoint"`` poisons the saved snapshot *without*
        refreshing its CRC, so a later restore sees the mismatch.
        Returns a damage description, or None when there is nothing to
        poison (dead host; no checkpoint yet; opaque state layout).
        """
        ctx = self.ranks[fault.rank]
        if fault.target == "checkpoint":
            snap = ctx.checkpoint
            if snap is None:
                return None
            target = self.problem.state_array(snap["state"])
        else:
            if not ctx.node.alive:
                return None
            target = self.problem.state_array(ctx.state)
        if target is None or target.size == 0:
            return None
        return corrupt_array_inplace(target, fault.mode, fault.amplitude, rng)

    def _register_halo_handlers(self, ctx: RankContext) -> None:
        # Halo payloads are idempotent state transfer: under the
        # resilient transport a reordered older transmission must lose to
        # a fresher one already delivered (AIAC newest-wins semantics).
        # The flag is inert on the lossless fast path.
        ctx.node.register_handler(
            "halo_from_left",
            lambda msg, c=ctx: self._on_halo(c, "left", msg),
            newest_wins=True,
        )
        ctx.node.register_handler(
            "halo_from_right",
            lambda msg, c=ctx: self._on_halo(c, "right", msg),
            newest_wins=True,
        )

    def _on_halo(self, ctx: RankContext, side: str, msg: Message) -> None:
        """Receive handler (Algorithms 2/3/7): position-checked halo update."""
        payload = msg.payload
        expected = ctx.lo - 1 if side == "left" else ctx.hi
        # The sender's estimate is taken even when the data is stale
        # (Algorithm 7 receives the residual unconditionally).
        ctx.neighbor_estimate[side] = payload["estimate"]
        if payload["position"] != expected:
            ctx.stale_halos_dropped += 1
            return
        if side == "left":
            ctx.halo_left = payload["data"]
            ctx.halo_iter_left = payload["iteration"]
        else:
            ctx.halo_right = payload["data"]
            ctx.halo_iter_right = payload["iteration"]
        ctx.halo_signal.trigger(self.sim)

    # ------------------------------------------------------------------
    # Decentralized detection (token ring; SolverConfig.detection)
    # ------------------------------------------------------------------
    def _send_token(self, ctx: RankContext, token: dict, direction: int) -> None:
        neighbor = self.neighbor(ctx.rank, "right" if direction > 0 else "left")
        assert neighbor is not None, "token routed off the chain"
        ctx.node.send(
            neighbor.node, "detect_token", token, self.config.header_bytes
        )

    def _on_detect_token(self, ctx: RankContext, msg: Message) -> None:
        assert self.detector is not None
        if self.rank_busy(ctx.rank):
            # Unfinished migration protocol: this rank cannot vouch for
            # its residual yet — treat it as unconverged (cancels the
            # round).
            self.detector.reset_rank(ctx.rank)
        forward, direction = self.detector.on_token(ctx.rank, msg.payload)
        if self.detector.converged:
            ctx.node.stop_requested = True
            self.detection_stop_time = self.sim.now
        if forward is not None:
            self._send_token(ctx, forward, direction)

    def _detection_after_sweep(self, ctx: RankContext) -> None:
        assert self.detector is not None
        self.detector.report(ctx.rank, ctx.residual)
        if self.rank_busy(ctx.rank):
            self.detector.reset_rank(ctx.rank)
            return
        if self.detector.converged and self.detector.n_ranks == 1:
            ctx.node.stop_requested = True
            self.detection_stop_time = self.sim.now
            return
        token = self.detector.should_launch(ctx.rank)
        if token is not None:
            self._send_token(ctx, token, +1)
        elif self.detector.converged and ctx.rank == 0:
            ctx.node.stop_requested = True
            self.detection_stop_time = self.sim.now

    # ------------------------------------------------------------------
    # Sending boundaries
    # ------------------------------------------------------------------
    def send_halo(
        self,
        ctx: RankContext,
        side: str,
        *,
        estimate: float,
        exclusive: bool,
        iteration: int | None = None,
    ) -> bool:
        """Send the boundary component on ``side`` to that neighbour.

        ``iteration`` stamps the payload (defaults to the rank's current
        sweep count); mid-sweep sends stamp the sweep in progress so the
        synchronous models can wait for exactly their neighbours'
        previous-iteration data.
        """
        neighbor = self.neighbor(ctx.rank, side)
        if neighbor is None:
            return False
        kind = "halo_from_right" if side == "left" else "halo_from_left"
        position = ctx.lo if side == "left" else ctx.hi - 1
        payload = {
            "data": self.problem.halo_out(ctx.state, side),
            "position": position,
            "estimate": estimate,
            "iteration": ctx.iteration if iteration is None else iteration,
        }
        nbytes = self.problem.halo_nbytes() + self.config.header_bytes
        return ctx.node.send(
            neighbor.node, kind, payload, nbytes, exclusive=exclusive
        )

    # ------------------------------------------------------------------
    # The common sweep (used by every execution model)
    # ------------------------------------------------------------------
    def sweep(
        self, ctx: RankContext, *, send_left_mid_sweep: bool, exclusive: bool
    ) -> Generator[Any, Any, float]:
        """Compute one sweep, holding virtual time; returns the duration.

        The numerics run eagerly (their results are deterministic), but
        the virtual time they cost is paid by two ``Hold``s so that the
        left boundary send fires *during* the sweep at the configured
        overlap point, as in Algorithm 1.
        """
        pre_estimate = ctx.estimator.value()
        epoch = ctx.node.crash_count
        result = self.problem.iterate(ctx.state, ctx.halo_left, ctx.halo_right)
        t0 = ctx.node.sim.now
        duration = ctx.node.host.duration_for_work(result.total_work, t0)
        # Polling throttle for near-free (fully skipped) sweeps.
        duration = max(duration, self.config.min_sweep_duration)
        first = duration * self.config.overlap_split
        yield Hold(first)
        if send_left_mid_sweep and ctx.node.alive:
            # Mid-sweep left send carries the *previous* sweep's estimate
            # (this sweep's residual is not known yet in the real code)
            # but the data and iteration stamp of the sweep in progress.
            self.send_halo(
                ctx,
                "left",
                estimate=pre_estimate,
                exclusive=exclusive,
                iteration=ctx.iteration + 1,
            )
        yield Hold(duration - first)

        if not ctx.node.alive or ctx.node.crash_count != epoch:
            # A crash hit this rank mid-sweep (possibly crash *and*
            # restart within one Hold): the sweep's results are lost.
            # Discard all accounting; the caller's recovery path restores
            # the last checkpoint before iterating again.
            return duration
        ctx.iteration += 1
        ctx.prev_residual = ctx.residual
        ctx.residual = result.local_residual
        if self.guard is not None and self.guard.after_sweep(self, ctx):
            # The divergence watchdog rolled this rank back to its last
            # checkpoint: the sweep's results are void (mirrors the
            # mid-sweep crash discard above), so none of its accounting
            # — estimator update, trace spans, convergence reports —
            # may leak out.
            return duration
        residual_l2 = float(np.linalg.norm(result.residuals))
        ctx.estimator.update(ctx.residual, residual_l2, duration, ctx.n_local)
        self.tracer.iteration(
            IterationSpan(
                rank=ctx.rank,
                iteration=ctx.iteration,
                t0=t0,
                t1=ctx.node.sim.now,
                work=result.total_work,
            )
        )
        self.tracer.residual(
            ResidualRecord(
                rank=ctx.rank,
                iteration=ctx.iteration,
                time=ctx.node.sim.now,
                residual=ctx.residual,
                n_local=ctx.n_local,
            )
        )
        if self.injector is None or not self._halo_is_stale(ctx):
            self.monitor.report(ctx.rank, ctx.residual, ctx.node.sim.now)
        if self.detector is not None and not ctx.node.stop_requested:
            self._detection_after_sweep(ctx)
        if (
            ctx.checkpoint is not None
            and self.checkpoint_every
            and ctx.iteration % self.checkpoint_every == 0
        ):
            self.checkpoint(ctx)
        if ctx.iteration >= self.config.max_iterations:
            self.abort(
                f"rank {ctx.rank} exceeded max_iterations="
                f"{self.config.max_iterations}"
            )
        return duration

    def _halo_is_stale(self, ctx: RankContext) -> bool:
        """Convergence-detection freshness gate (fault injection only).

        A residual computed against a badly stale halo is meaningless
        for global convergence: a drop-starved rank quiesces against
        its frozen boundary and its local residual collapses even
        though the global solution is wrong.  While either halo input
        lags the owning neighbour's progress by more than the
        configured staleness bound, the sweep is *not reported* to the
        oracle — it carries no evidence either way, so the rank's
        persistence streak pauses rather than resetting (resetting
        would defer detection almost indefinitely under sustained
        loss).  The oracle is omniscient by design, so peeking at the
        neighbour's true iteration count is fair game here.  The
        fault-free fast path never calls this.
        """
        bound = self.injector.resilience.max_halo_staleness
        for side, halo_iter in (
            ("left", ctx.halo_iter_left),
            ("right", ctx.halo_iter_right),
        ):
            neighbor = self.neighbor(ctx.rank, side)
            if neighbor is not None and neighbor.iteration - halo_iter > bound:
                return True
        return False

    # ------------------------------------------------------------------
    # Running / result assembly
    # ------------------------------------------------------------------
    def run(self) -> None:
        self.sim.run(until=self.config.max_time)

    def result(self) -> RunResult:
        blocks = sorted(self.ranks, key=lambda c: c.lo)
        if self.detector is not None:
            converged = self.detector.converged
            time = (
                self.detection_stop_time
                if self.detection_stop_time is not None
                else self.sim.now
            )
        else:
            converged = self.monitor.converged
            time = (
                self.monitor.convergence_time
                if self.monitor.convergence_time is not None
                else self.sim.now
            )
        return RunResult(
            model=self.model,
            converged=converged,
            time=time,
            iterations=[c.iteration for c in self.ranks],
            # busy_time_of reads the tracer's always-on aggregates, so
            # untraced sweep runs now report real per-rank work too.
            work=[self.tracer.busy_time_of(c.rank) for c in self.ranks],
            solution_blocks=[self.problem.solution(c.state) for c in blocks],
            final_partition=[(c.lo, c.hi) for c in self.ranks],
            residuals_at_stop=[c.residual for c in self.ranks],
            tracer=self.tracer,
            n_migrations=self.tracer.n_migrations(),
            components_migrated=self.tracer.components_migrated(),
            meta={
                "aborted_reason": self.aborted_reason,
                "stale_halos_dropped": sum(
                    c.stale_halos_dropped for c in self.ranks
                ),
                # With token-ring detection the oracle keeps recording,
                # so the protocol's overhead is (time - oracle time).
                "oracle_detection_time": self.monitor.convergence_time,
                "detection_messages": (
                    self.detector.messages_used if self.detector else 0
                ),
                # Network totals (this run's private platform copy).
                "network_bytes": self.platform.network.bytes_sent,
                "network_messages": self.platform.network.messages_sent,
                # Per-rank transport counters (all zeros on the lossless
                # fast path; populated under the resilient transport).
                "transport_per_rank": [
                    {
                        "rank": c.rank,
                        "retries": c.node.retries,
                        "sends_failed": c.node.sends_failed,
                        "duplicates_suppressed": c.node.duplicates_suppressed,
                        "stale_rejected": c.node.stale_rejected,
                        "crashes": c.node.crash_count,
                    }
                    for c in self.ranks
                ],
            },
        )

    def export_metrics(self, registry: Any, **labels) -> None:
        """Scrape every instrumented component of this run into ``registry``.

        Pulls the tracer aggregates, per-rank transport counters, the
        network traffic totals and (when attached) the fault injector's
        counters.  Purely a read — calling it never perturbs the run.
        """
        self.tracer.export_metrics(registry, **labels)
        self.sim.export_metrics(registry, **labels)
        for ctx in self.ranks:
            ctx.node.export_metrics(registry, **labels)
        self.platform.network.export_metrics(registry, **labels)
        if self.injector is not None:
            self.injector.export_metrics(registry, **labels)


def build_chain(
    problem: Problem,
    platform: Platform,
    config: SolverConfig | None = None,
    *,
    model: str = "aiac",
    host_order: list[int] | None = None,
) -> ChainRun:
    """Construct a chain run without starting it (for custom drivers)."""
    return ChainRun(
        problem,
        platform,
        config if config is not None else SolverConfig(),
        model=model,
        host_order=host_order,
    )


def _aiac_process(run: ChainRun, ctx: RankContext):
    """The main loop of Algorithm 1 (no load balancing).

    The crash-recovery prologue is a no-op on the lossless fast path
    (``alive`` is always True and ``crash_count == restored_epoch == 0``
    without a fault injector): a crashed rank parks on its restart
    signal, then rejoins from its last checkpoint before iterating.
    """
    exclusive = run.config.exclusive_sends
    node = ctx.node
    while not node.stop_requested:
        if not node.alive:
            yield Wait(node.restart_signal)
            continue  # re-check stop/crash state after waking
        if node.crash_count != ctx.restored_epoch:
            run.restore_checkpoint(ctx)
            continue
        yield from run.sweep(ctx, send_left_mid_sweep=True, exclusive=exclusive)
        if node.stop_requested:
            break
        if not node.alive or node.crash_count != ctx.restored_epoch:
            continue  # the sweep was lost to a crash
        self_estimate = ctx.estimator.value()
        run.send_halo(ctx, "right", estimate=self_estimate, exclusive=exclusive)


def run_aiac(
    problem: Problem,
    platform: Platform,
    config: SolverConfig | None = None,
    *,
    host_order: list[int] | None = None,
    injector: Any = None,
    profiler: Any = None,
    guard: Any = None,
) -> RunResult:
    """Solve ``problem`` with the unbalanced AIAC algorithm (Algorithm 1).

    Every processor iterates on whatever halo data is available —
    no waiting, no synchronisation.  ``injector`` optionally arms a
    :class:`~repro.faults.injector.FaultInjector` (resilient transport +
    fault schedule) against the run; ``profiler`` optionally attaches a
    :class:`~repro.obs.profile.SimProfiler` to the DES kernel (the event
    trace is bit-identical with or without it); ``guard`` optionally
    attaches a :class:`~repro.guard.InvariantMonitor` (runtime safety
    invariants + watchdogs, see ``docs/robustness.md``).  Returns the
    :class:`RunResult`.
    """
    run = build_chain(
        problem, platform, config, model="aiac", host_order=host_order
    )
    if injector is not None:
        injector.install(run)
    if profiler is not None:
        run.sim.attach_profiler(profiler)
    if guard is not None:
        guard.attach(run)
    for ctx in run.ranks:
        run.sim.spawn(f"aiac-rank-{ctx.rank}", _aiac_process(run, ctx))
    run.run()
    return run.result()
